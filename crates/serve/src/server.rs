//! The serving runtime: registration, admission, batching, dispatch.
//!
//! One [`Server`] owns a set of compiled functions (all sharing one
//! [`Engine`] and therefore one fingerprint cache), a bounded queue per
//! function, and a single dispatcher thread. Clients submit
//! [`Request`]s from any thread and get [`Ticket`]s back; the dispatcher
//! coalesces queued requests into micro-batches under each function's
//! [`BatchPolicy`] and submits batch execution onto the persistent
//! `firvm` worker pool ([`firvm::pool::submit`]) — the same workers that
//! run SOAC chunks, so there is exactly one thread pool in the process.
//!
//! Request lifecycle:
//!
//! 1. **Admission.** Unknown keys and shut-down servers are rejected;
//!    a full queue sheds the request with [`ServeError::Overloaded`].
//! 2. **Batching.** A batch is cut when the queue reaches
//!    `max_batch_size` or its oldest request has waited `max_wait`
//!    (whichever comes first). Batches are homogeneous in request kind
//!    (primal calls vs. gradients) and never cross functions.
//! 3. **Execution.** The batch runs through
//!    `CompiledFn::call_batch_fused` / `grad_batch_fused`: same-shaped
//!    batches execute as one fused program (the body mapped over a
//!    stacked batch dimension), everything else falls back to
//!    pool-parallel per-request execution — and each request resolves
//!    with its *own* result or error either way, so one malformed
//!    request cannot fail its batchmates. Requests whose deadline passed
//!    while queued are dropped at the cut with
//!    [`ServeError::DeadlineExceeded`].
//! 4. **Shutdown.** [`Server::shutdown`] stops admission, drains every
//!    queue through the normal batch path, waits for in-flight batches,
//!    and returns the final metrics snapshot.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use fir::ir::Fun;
use fir_api::{CompiledFn, Engine, GradOutput, Transform};
use interp::Value;

use crate::error::ServeError;
use crate::metrics::{FnMetrics, MetricsSnapshot};
use crate::ticket::{Ticket, TicketState};

// ---------------------------------------------------------------------
// Policy and requests
// ---------------------------------------------------------------------

/// When the micro-batcher cuts a batch for one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Cut as soon as this many requests are queued. `1` disables
    /// coalescing (every request is its own batch).
    pub max_batch_size: usize,
    /// Cut when the oldest queued request has waited this long, even if
    /// the batch is not full. `Duration::ZERO` cuts eagerly.
    pub max_wait: Duration,
}

impl Default for BatchPolicy {
    fn default() -> BatchPolicy {
        BatchPolicy {
            max_batch_size: 32,
            max_wait: Duration::from_micros(500),
        }
    }
}

impl BatchPolicy {
    /// A policy that never coalesces: batch size 1 (the "unbatched"
    /// baseline configuration of the serving benchmark).
    pub fn unbatched() -> BatchPolicy {
        BatchPolicy {
            max_batch_size: 1,
            max_wait: Duration::ZERO,
        }
    }
}

/// The two request kinds a server accepts. Together with the transform
/// stack, the kind names a batching *lane* — the unit per-lane policy
/// tuning ([`Server::set_lane_policy`]) operates on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Primal calls ([`Server::submit`]).
    Call,
    /// Reverse-mode gradients ([`Server::submit_grad`]).
    Grad,
}

/// A batching policy whose knobs can be retuned while the server runs:
/// writers (`set_policy` / an adaptive controller) store through the
/// atomics, the dispatcher reads them lock-free at every cut.
struct DynPolicy {
    max_batch: AtomicUsize,
    max_wait_ns: AtomicU64,
}

impl DynPolicy {
    fn new(p: BatchPolicy) -> DynPolicy {
        let d = DynPolicy {
            max_batch: AtomicUsize::new(1),
            max_wait_ns: AtomicU64::new(0),
        };
        d.set(p);
        d
    }

    fn set(&self, p: BatchPolicy) {
        self.max_batch
            .store(p.max_batch_size.max(1), Ordering::Relaxed);
        let ns = u64::try_from(p.max_wait.as_nanos()).unwrap_or(u64::MAX);
        self.max_wait_ns.store(ns, Ordering::Relaxed);
    }

    fn get(&self) -> BatchPolicy {
        BatchPolicy {
            max_batch_size: self.max_batch.load(Ordering::Relaxed),
            max_wait: Duration::from_nanos(self.max_wait_ns.load(Ordering::Relaxed)),
        }
    }
}

/// One serving request: a registered function key, a transform stack to
/// apply to it, the argument list, and an optional deadline relative to
/// submission. Requests still queued when their deadline passes are
/// dropped (ticket resolves [`ServeError::DeadlineExceeded`]) instead of
/// executed.
#[derive(Debug, Clone)]
pub struct Request {
    /// The key the target function was registered under.
    pub fn_key: String,
    /// The transform stack applied to the registered function before
    /// execution, left to right (empty: the function itself). The
    /// arguments must match the *transformed* signature — e.g. a
    /// `[Vjp]` request passes the original arguments plus the adjoint
    /// seeds. The micro-batcher only coalesces requests that share both
    /// the key and the stack, and the derived program is compiled once
    /// per `(key, stack)` through the engine cache.
    pub transforms: Vec<Transform>,
    /// The argument list, validated at execution (not admission).
    pub args: Vec<Value>,
    /// Give up if the request has not started executing within this long.
    pub deadline: Option<Duration>,
}

impl Request {
    /// A request for the registered function itself, with no deadline.
    pub fn new(fn_key: impl Into<String>, args: Vec<Value>) -> Request {
        Request {
            fn_key: fn_key.into(),
            transforms: Vec::new(),
            args,
            deadline: None,
        }
    }

    /// Attach a deadline relative to submission.
    pub fn with_deadline(mut self, deadline: Duration) -> Request {
        self.deadline = Some(deadline);
        self
    }

    /// Target a transformed program: the stack is applied to the
    /// registered function left to right (`[Vjp, Vmap]` serves
    /// `vmap(vjp(f))`).
    pub fn with_transforms(mut self, transforms: impl Into<Vec<Transform>>) -> Request {
        self.transforms = transforms.into();
        self
    }
}

// ---------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------

/// Builds a [`Server`]: one engine, many registered functions, one
/// dispatcher.
///
/// ```
/// use fir::builder::Builder;
/// use fir::types::Type;
/// use fir_api::Engine;
/// use fir_serve::{Request, ServerBuilder};
/// use interp::Value;
///
/// let mut b = Builder::new();
/// let dot = b.build_fun("dot", &[Type::arr_f64(1), Type::arr_f64(1)], |b, ps| {
///     let prods = b.map1(Type::arr_f64(1), &[ps[0], ps[1]], |b, es| {
///         vec![b.fmul(es[0].into(), es[1].into())]
///     });
///     vec![b.sum(prods).into()]
/// });
///
/// let server = ServerBuilder::new(Engine::new()).register("dot", &dot).build()?;
/// let args = vec![Value::from(vec![1.0, 2.0]), Value::from(vec![3.0, 4.0])];
/// let ticket = server.submit(Request::new("dot", args))?;
/// assert_eq!(ticket.wait()?[0].as_f64(), 11.0);
/// server.shutdown();
/// # Ok::<(), fir_serve::ServeError>(())
/// ```
pub struct ServerBuilder {
    engine: Engine,
    default_policy: BatchPolicy,
    queue_capacity: usize,
    fns: Vec<(String, Fun, Option<BatchPolicy>)>,
    warmup: Vec<Vec<Transform>>,
}

impl ServerBuilder {
    /// A builder over `engine`. Every registered function compiles
    /// through (and shares) this engine's fingerprint cache.
    pub fn new(engine: Engine) -> ServerBuilder {
        ServerBuilder {
            engine,
            default_policy: BatchPolicy::default(),
            queue_capacity: 1024,
            fns: Vec::new(),
            warmup: Vec::new(),
        }
    }

    /// Precompile the given transform stacks for **every** registered
    /// function during [`ServerBuilder::build`], before any traffic is
    /// admitted — so the first request of each `(fn, stack)` lane is a
    /// cache hit instead of paying derivation + compilation inline. Each
    /// warmed lane is recorded as a `serve`/`warmup` trace span. Stacks
    /// that do not apply to a function are skipped (their requests will
    /// report the derivation error at execution, as without warmup).
    pub fn warmup(mut self, stacks: &[&[Transform]]) -> ServerBuilder {
        self.warmup.extend(stacks.iter().map(|s| s.to_vec()));
        self
    }

    /// The batching policy for functions registered without their own.
    pub fn batch_policy(mut self, policy: BatchPolicy) -> ServerBuilder {
        self.default_policy = policy;
        self
    }

    /// Bound each function's admission queue (default 1024, clamped to at
    /// least 1). Submissions beyond the bound are shed with
    /// [`ServeError::Overloaded`].
    pub fn queue_capacity(mut self, capacity: usize) -> ServerBuilder {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Register `fun` under `key` with the default policy. Compilation
    /// happens in [`ServerBuilder::build`].
    pub fn register(self, key: &str, fun: &Fun) -> ServerBuilder {
        self.register_impl(key, fun, None)
    }

    /// Register with a function-specific batching policy.
    pub fn register_with(self, key: &str, fun: &Fun, policy: BatchPolicy) -> ServerBuilder {
        self.register_impl(key, fun, Some(policy))
    }

    fn register_impl(mut self, key: &str, fun: &Fun, policy: Option<BatchPolicy>) -> ServerBuilder {
        self.fns.push((key.to_string(), fun.clone(), policy));
        self
    }

    /// Compile every registered function, warm its gradient handle, and
    /// start the dispatcher. Duplicate keys and programs that do not
    /// compile are [`ServeError::Config`].
    pub fn build(self) -> Result<Server, ServeError> {
        let mut fns = Vec::with_capacity(self.fns.len());
        let mut index = HashMap::new();
        for (key, fun, policy) in self.fns {
            if index.contains_key(&key) {
                return Err(ServeError::Config {
                    what: format!("function key {key:?} registered twice"),
                });
            }
            let cf = self.engine.compile(&fun).map_err(|e| ServeError::Config {
                what: format!("function {key:?} does not compile: {e}"),
            })?;
            // Warm the reverse-mode handle so the first gradient request
            // does not pay derivation+compilation inside a batch. Funs
            // without a usable vjp still serve primal calls; their
            // gradient requests resolve with the derivation error.
            let _ = cf.vjp();
            // Requested warmup lanes: compile each stack now, before the
            // server exists and can admit traffic.
            for stack in &self.warmup {
                let _sp = fir_trace::span("serve", "warmup");
                let _ = cf.transform(stack);
            }
            index.insert(key.clone(), fns.len());
            fns.push(FnEntry {
                key,
                cf,
                policy: DynPolicy::new(policy.unwrap_or(self.default_policy)),
                lanes: Mutex::new(Vec::new()),
                seen_lanes: Mutex::new(Vec::new()),
                capacity: self.queue_capacity,
                metrics: FnMetrics::default(),
            });
        }
        let nfns = fns.len();
        let inner = Arc::new(Inner {
            engine: self.engine,
            fns,
            index,
            queues: Mutex::new(Queues {
                shutdown: false,
                drain_deadline: None,
                qs: (0..nfns).map(|_| VecDeque::new()).collect(),
            }),
            work_cv: Condvar::new(),
            in_flight: AtomicUsize::new(0),
            idle_mu: Mutex::new(()),
            idle_cv: Condvar::new(),
            start: Instant::now(),
        });
        let dispatcher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("fir-serve-dispatch".to_string())
                .spawn(move || dispatcher_loop(&inner))
                .map_err(|e| ServeError::Config {
                    what: format!("could not spawn dispatcher: {e}"),
                })?
        };
        Ok(Server {
            inner,
            dispatcher: Mutex::new(Some(dispatcher)),
        })
    }
}

// ---------------------------------------------------------------------
// Server internals
// ---------------------------------------------------------------------

/// Identifies one batching lane: the request kind plus its transform
/// stack.
type LaneKey = (RequestKind, Vec<Transform>);

struct FnEntry {
    key: String,
    cf: CompiledFn,
    /// The function-level policy: the default for every lane without its
    /// own override. Atomic so a live server can be retuned.
    policy: DynPolicy,
    /// Per-`(kind, stack)` policy overrides, installed by
    /// [`Server::set_lane_policy`]. Lanes without an entry follow
    /// `policy`.
    lanes: Mutex<Vec<(LaneKey, Arc<DynPolicy>)>>,
    /// Every `(kind, stack)` lane that has carried at least one request —
    /// what an external policy controller enumerates to tune the server.
    seen_lanes: Mutex<Vec<(RequestKind, Vec<Transform>)>>,
    capacity: usize,
    metrics: FnMetrics,
}

impl FnEntry {
    /// The effective policy of one batching lane: its override if one is
    /// installed, the function default otherwise.
    fn policy_for(&self, kind: RequestKind, stack: &[Transform]) -> BatchPolicy {
        let lanes = self.lanes.lock().unwrap();
        for ((k, s), p) in lanes.iter() {
            if *k == kind && s.as_slice() == stack {
                return p.get();
            }
        }
        self.policy.get()
    }

    /// The override slot of one lane, created on first use (seeded from
    /// the current function default).
    fn lane_slot(&self, kind: RequestKind, stack: &[Transform]) -> Arc<DynPolicy> {
        let mut lanes = self.lanes.lock().unwrap();
        for ((k, s), p) in lanes.iter() {
            if *k == kind && s.as_slice() == stack {
                return Arc::clone(p);
            }
        }
        let p = Arc::new(DynPolicy::new(self.policy.get()));
        lanes.push(((kind, stack.to_vec()), Arc::clone(&p)));
        p
    }

    /// Record that a request rode lane `(kind, stack)`.
    fn note_lane(&self, kind: RequestKind, stack: &[Transform]) {
        let mut seen = self.seen_lanes.lock().unwrap();
        if !seen
            .iter()
            .any(|(k, s)| *k == kind && s.as_slice() == stack)
        {
            seen.push((kind, stack.to_vec()));
        }
    }
}

/// A queued request: its payload/ticket, plus the timing the batcher and
/// the metrics need.
struct Pending {
    job: Job,
    enqueued: Instant,
    deadline: Option<Instant>,
    /// Trace id of the request's async track (0 when tracing is off):
    /// opened at admission, closed at ticket fulfillment, so one Perfetto
    /// track shows the request's whole life across threads.
    trace_id: u64,
}

/// The two request kinds, each carrying the transform stack it targets.
/// Batches are homogeneous in `(kind, stack)` so one engine-level batch
/// call on one derived program resolves the whole cut.
enum Job {
    Call {
        stack: Vec<Transform>,
        args: Vec<Value>,
        ticket: Arc<TicketState<Vec<Value>>>,
    },
    Grad {
        stack: Vec<Transform>,
        args: Vec<Value>,
        ticket: Arc<TicketState<GradOutput>>,
    },
}

impl Job {
    /// The batching key: requests coalesce only when this matches.
    fn kind(&self) -> (RequestKind, &[Transform]) {
        match self {
            Job::Call { stack, .. } => (RequestKind::Call, stack),
            Job::Grad { stack, .. } => (RequestKind::Grad, stack),
        }
    }
}

struct Queues {
    shutdown: bool,
    /// Set by [`Server::shutdown_within`]: once this instant passes, the
    /// dispatcher sheds still-queued requests instead of dispatching
    /// them, so a bounded shutdown cannot hang on a deep queue.
    drain_deadline: Option<Instant>,
    qs: Vec<VecDeque<Pending>>,
}

struct Inner {
    /// The engine every registered function compiled through — retained
    /// so [`Server::metrics`] can surface its cache counters (in-memory
    /// and, when configured, the persistent on-disk tier).
    engine: Engine,
    fns: Vec<FnEntry>,
    index: HashMap<String, usize>,
    queues: Mutex<Queues>,
    /// Wakes the dispatcher on submissions and shutdown.
    work_cv: Condvar,
    /// Batches dispatched to the pool but not yet resolved.
    in_flight: AtomicUsize,
    idle_mu: Mutex<()>,
    idle_cv: Condvar,
    start: Instant,
}

/// A concurrent serving runtime over one [`Engine`].
///
/// Cheap to share by reference across client threads ([`Server::submit`]
/// takes `&self`). Dropping the server shuts it down gracefully (drains
/// queues, waits for in-flight batches).
pub struct Server {
    inner: Arc<Inner>,
    dispatcher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("fns", &self.fn_keys())
            .finish()
    }
}

impl Server {
    /// The registered function keys, in registration order.
    pub fn fn_keys(&self) -> Vec<String> {
        self.inner.fns.iter().map(|f| f.key.clone()).collect()
    }

    /// Submit a primal-call request; the ticket resolves with the
    /// function's results.
    pub fn submit(&self, req: Request) -> Result<Ticket<Vec<Value>>, ServeError> {
        let idx = self.resolve(&req.fn_key)?;
        let (ticket, state) = Ticket::new();
        self.enqueue(
            idx,
            Job::Call {
                stack: req.transforms,
                args: req.args,
                ticket: state,
            },
            req.deadline,
        )?;
        Ok(ticket)
    }

    /// Submit a reverse-mode gradient request; the ticket resolves with
    /// the typed [`GradOutput`] (auto-derived unit seeds, like
    /// `CompiledFn::grad`). If the request names a transform stack, the
    /// gradient is taken of the *transformed* program.
    pub fn submit_grad(&self, req: Request) -> Result<Ticket<GradOutput>, ServeError> {
        let idx = self.resolve(&req.fn_key)?;
        let (ticket, state) = Ticket::new();
        self.enqueue(
            idx,
            Job::Grad {
                stack: req.transforms,
                args: req.args,
                ticket: state,
            },
            req.deadline,
        )?;
        Ok(ticket)
    }

    /// Submit a primal call and block for its result.
    pub fn call(&self, fn_key: &str, args: Vec<Value>) -> Result<Vec<Value>, ServeError> {
        self.submit(Request::new(fn_key, args))?.wait()
    }

    /// Submit a gradient request and block for its result.
    pub fn grad(&self, fn_key: &str, args: Vec<Value>) -> Result<GradOutput, ServeError> {
        self.submit_grad(Request::new(fn_key, args))?.wait()
    }

    /// A point-in-time snapshot of every function's serving metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        let uptime = self.inner.start.elapsed();
        MetricsSnapshot {
            uptime,
            pool: firvm::pool::WorkerPool::global().utilization(),
            fns: self
                .inner
                .fns
                .iter()
                .map(|f| f.metrics.snapshot(&f.key, uptime))
                .collect(),
            alloc: interp::alloc_stats(),
            cache: Some(self.inner.engine.cache_stats()),
            net: None,
        }
    }

    /// The function-level batching policy currently in effect for
    /// `fn_key` (the default of every lane without its own override).
    pub fn policy(&self, fn_key: &str) -> Result<BatchPolicy, ServeError> {
        Ok(self.inner.fns[self.resolve(fn_key)?].policy.get())
    }

    /// Replace `fn_key`'s function-level policy while the server runs.
    /// Lanes with explicit overrides ([`Server::set_lane_policy`]) keep
    /// them. Takes effect at the next batch cut.
    pub fn set_policy(&self, fn_key: &str, policy: BatchPolicy) -> Result<(), ServeError> {
        let idx = self.resolve(fn_key)?;
        self.inner.fns[idx].policy.set(policy);
        // The dispatcher may be asleep on a timer armed under the old
        // max_wait; wake it so the new policy applies promptly.
        self.inner.work_cv.notify_all();
        Ok(())
    }

    /// The effective policy of one `(kind, transform-stack)` lane.
    pub fn lane_policy(
        &self,
        fn_key: &str,
        kind: RequestKind,
        stack: &[Transform],
    ) -> Result<BatchPolicy, ServeError> {
        Ok(self.inner.fns[self.resolve(fn_key)?].policy_for(kind, stack))
    }

    /// Install (or retune) a policy override for one
    /// `(kind, transform-stack)` lane of `fn_key`, leaving the function
    /// default and every other lane untouched.
    pub fn set_lane_policy(
        &self,
        fn_key: &str,
        kind: RequestKind,
        stack: &[Transform],
        policy: BatchPolicy,
    ) -> Result<(), ServeError> {
        let idx = self.resolve(fn_key)?;
        self.inner.fns[idx].lane_slot(kind, stack).set(policy);
        self.inner.work_cv.notify_all();
        Ok(())
    }

    /// Every `(kind, transform-stack)` lane of `fn_key` that has carried
    /// at least one request — what a policy controller enumerates to
    /// retune a live server lane by lane.
    pub fn lanes(&self, fn_key: &str) -> Result<Vec<(RequestKind, Vec<Transform>)>, ServeError> {
        let idx = self.resolve(fn_key)?;
        Ok(self.inner.fns[idx].seen_lanes.lock().unwrap().clone())
    }

    /// Stop admitting requests, drain every queue through the normal
    /// batch path, wait for in-flight batches to resolve, and return the
    /// final metrics. Every ticket issued before shutdown resolves.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&self) -> MetricsSnapshot {
        {
            let mut q = self.inner.queues.lock().unwrap();
            q.shutdown = true;
            self.inner.work_cv.notify_all();
        }
        if let Some(handle) = self.dispatcher.lock().unwrap().take() {
            let _ = handle.join();
        }
        // The dispatcher has exited, so every queued request has been
        // dispatched; wait for the pool to resolve the in-flight batches.
        let mut guard = self.inner.idle_mu.lock().unwrap();
        while self.inner.in_flight.load(Ordering::Acquire) != 0 {
            let (g, _) = self
                .inner
                .idle_cv
                .wait_timeout(guard, Duration::from_millis(10))
                .unwrap();
            guard = g;
        }
        drop(guard);
        self.metrics()
    }

    /// [`Server::shutdown`] with a drain budget: requests still queued
    /// when `timeout` passes are shed (their tickets resolve
    /// [`ServeError::ShuttingDown`], counted in the `shed` metric)
    /// instead of executed, and the wait for in-flight batches is bounded
    /// by the same deadline — so shutdown cannot hang behind a deep queue
    /// or a wedged batch. `Duration::ZERO` sheds everything still queued.
    pub fn shutdown_within(&self, timeout: Duration) -> MetricsSnapshot {
        let deadline = Instant::now() + timeout;
        {
            let mut q = self.inner.queues.lock().unwrap();
            q.shutdown = true;
            q.drain_deadline = Some(deadline);
            self.inner.work_cv.notify_all();
        }
        if let Some(handle) = self.dispatcher.lock().unwrap().take() {
            let _ = handle.join();
        }
        // Bounded in-flight wait: batches already on the pool cannot be
        // recalled, but we stop waiting for them at the deadline (their
        // tickets still resolve whenever the pool gets to them).
        let mut guard = self.inner.idle_mu.lock().unwrap();
        while self.inner.in_flight.load(Ordering::Acquire) != 0 && Instant::now() < deadline {
            let (g, _) = self
                .inner
                .idle_cv
                .wait_timeout(guard, Duration::from_millis(10))
                .unwrap();
            guard = g;
        }
        drop(guard);
        self.metrics()
    }

    fn resolve(&self, fn_key: &str) -> Result<usize, ServeError> {
        self.inner
            .index
            .get(fn_key)
            .copied()
            .ok_or_else(|| ServeError::UnknownFn {
                fn_key: fn_key.to_string(),
                known: self.fn_keys(),
            })
    }

    fn enqueue(&self, idx: usize, job: Job, deadline: Option<Duration>) -> Result<(), ServeError> {
        let entry = &self.inner.fns[idx];
        let max_batch = {
            let (kind, stack) = job.kind();
            entry.note_lane(kind, stack);
            entry.policy_for(kind, stack).max_batch_size
        };
        let now = Instant::now();
        let mut q = self.inner.queues.lock().unwrap();
        if q.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        let queue = &mut q.qs[idx];
        if queue.len() >= entry.capacity {
            entry.metrics.shed.inc();
            return Err(ServeError::Overloaded {
                fn_key: entry.key.clone(),
                capacity: entry.capacity,
            });
        }
        let trace_id = if fir_trace::enabled() {
            let id = fir_trace::next_id();
            fir_trace::async_begin("serve", "request", id);
            id
        } else {
            0
        };
        queue.push_back(Pending {
            job,
            enqueued: now,
            deadline: deadline.map(|d| now + d),
            trace_id,
        });
        let len = queue.len();
        entry.metrics.submitted.inc();
        entry.metrics.queue_depth.set(len);
        drop(q);
        // Wake the dispatcher only on transitions it must see: the first
        // request of an empty queue arms the max_wait timer, and a full
        // batch is ready to cut. Intermediate submissions ride the armed
        // timer — waking the dispatcher per request would burn a core's
        // worth of wakeups exactly when batching is supposed to save it.
        if len == 1 || len >= max_batch {
            self.inner.work_cv.notify_all();
        }
        Ok(())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Skip if a shutdown (graceful or bounded) already ran — a
        // bounded shutdown's decision not to wait out in-flight batches
        // must not be overridden by an unbounded wait here.
        if self.dispatcher.lock().unwrap().is_some() {
            self.shutdown();
        }
    }
}

// ---------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------

/// Pop a batch homogeneous in `(kind, transform stack)` (at most `max`)
/// off the queue front.
fn cut_batch(queue: &mut VecDeque<Pending>, max: usize) -> Vec<Pending> {
    let (kind, stack) = queue.front().expect("cut of empty queue").job.kind();
    let (kind, stack) = (kind, stack.to_vec());
    let mut batch = Vec::new();
    while batch.len() < max
        && queue
            .front()
            .is_some_and(|p| p.job.kind() == (kind, stack.as_slice()))
    {
        batch.push(queue.pop_front().expect("front checked"));
    }
    batch
}

/// Resolve every still-queued request with [`ServeError::ShuttingDown`]:
/// the bounded-shutdown path for work that could not drain in time. Each
/// shed request counts toward its function's `shed` metric, exactly like
/// admission-time shedding.
fn shed_all(inner: &Inner, q: &mut Queues) {
    for (idx, entry) in inner.fns.iter().enumerate() {
        let queue = &mut q.qs[idx];
        while let Some(p) = queue.pop_front() {
            entry.metrics.shed.inc();
            fir_trace::async_end("serve", "request", p.trace_id, 0);
            match p.job {
                Job::Call { ticket, .. } => ticket.fulfill(Err(ServeError::ShuttingDown)),
                Job::Grad { ticket, .. } => ticket.fulfill(Err(ServeError::ShuttingDown)),
            }
        }
        entry.metrics.queue_depth.set(0);
    }
}

/// The single dispatcher thread: waits for work, cuts ready batches, and
/// submits their execution onto the persistent worker pool. Exits once
/// shutdown is requested and every queue has drained.
fn dispatcher_loop(inner: &Arc<Inner>) {
    let mut q = inner.queues.lock().unwrap();
    loop {
        let now = Instant::now();
        let shutting = q.shutdown;
        // A bounded shutdown whose drain deadline has passed: shed
        // everything still queued instead of dispatching it, and exit.
        if shutting && q.drain_deadline.is_some_and(|d| d <= now) {
            shed_all(inner, &mut q);
            return;
        }
        let mut next_due: Option<Instant> = None;
        let mut cut: Option<(usize, Vec<Pending>)> = None;
        for (idx, entry) in inner.fns.iter().enumerate() {
            let queue = &mut q.qs[idx];
            let Some(front) = queue.front() else { continue };
            // Batching is governed by the policy of the lane at the queue
            // front (cut_batch only coalesces that lane anyway).
            let pol = {
                let (kind, stack) = front.job.kind();
                entry.policy_for(kind, stack)
            };
            let due = front.enqueued + pol.max_wait;
            if shutting || queue.len() >= pol.max_batch_size || due <= now {
                let batch = cut_batch(queue, pol.max_batch_size);
                entry.metrics.queue_depth.set(queue.len());
                cut = Some((idx, batch));
                break;
            }
            next_due = Some(next_due.map_or(due, |d: Instant| d.min(due)));
        }
        if let Some((idx, batch)) = cut {
            // Count the batch in-flight *before* releasing the queue lock
            // so shutdown cannot observe "queues empty, nothing in
            // flight" between the cut and the pool submission.
            inner.in_flight.fetch_add(1, Ordering::AcqRel);
            drop(q);
            let inner2 = Arc::clone(inner);
            firvm::pool::submit(move || execute_batch(&inner2, idx, batch));
            q = inner.queues.lock().unwrap();
            continue;
        }
        if q.shutdown {
            // Shutdown requested and every queue is empty: done.
            return;
        }
        q = match next_due {
            // A queue is non-empty but not yet due: sleep until its
            // max_wait expires (or a submission wakes us early).
            Some(due) => {
                let timeout = due.saturating_duration_since(now);
                inner.work_cv.wait_timeout(q, timeout).unwrap().0
            }
            None => inner.work_cv.wait(q).unwrap(),
        };
    }
}

/// Execute one homogeneous micro-batch on the pool: drop expired
/// requests, run the engine batch call on the requested transform stack,
/// resolve every ticket with its own outcome, and record metrics.
/// One request's completion context within a lane: its enqueue time,
/// trace id, and the ticket to fulfill.
type Slot<T> = (Instant, u64, Arc<TicketState<T>>);

/// One `(kind, stack)`'s share of a cut batch: the argument lists plus
/// each request's completion slot.
type Lane<T> = (Vec<Vec<Value>>, Vec<Slot<T>>);

/// The lane for `stack` in `lanes`, created on first use. (cut_batch
/// produces stack-homogeneous batches, so in practice there is exactly
/// one lane per kind — but the executor does not rely on it.)
fn lane_for<T>(lanes: &mut Vec<(Vec<Transform>, Lane<T>)>, stack: Vec<Transform>) -> &mut Lane<T> {
    if let Some(i) = lanes.iter().position(|(s, _)| *s == stack) {
        return &mut lanes[i].1;
    }
    lanes.push((stack, Default::default()));
    &mut lanes.last_mut().expect("just pushed").1
}

fn execute_batch(inner: &Inner, idx: usize, batch: Vec<Pending>) {
    let entry = &inner.fns[idx];
    let now = Instant::now();
    // Partition the cut: expired requests resolve immediately, the rest
    // split by (kind, transform stack). (cut_batch produces homogeneous
    // batches, but the executor does not rely on it — nothing here can
    // panic, so every ticket provably reaches one of the resolution
    // paths below.)
    let mut calls: Vec<(Vec<Transform>, Lane<Vec<Value>>)> = Vec::new();
    let mut grads: Vec<(Vec<Transform>, Lane<GradOutput>)> = Vec::new();
    let mut live = 0usize;
    for p in batch {
        if p.deadline.is_some_and(|d| d <= now) {
            entry.metrics.expired.inc();
            let waited = now.saturating_duration_since(p.enqueued);
            let err = ServeError::DeadlineExceeded {
                fn_key: entry.key.clone(),
                waited,
            };
            fir_trace::async_end("serve", "request", p.trace_id, 0);
            match p.job {
                Job::Call { ticket, .. } => ticket.fulfill(Err(err)),
                Job::Grad { ticket, .. } => ticket.fulfill(Err(err)),
            }
        } else {
            live += 1;
            match p.job {
                Job::Call {
                    stack,
                    args,
                    ticket,
                } => {
                    let lane = lane_for(&mut calls, stack);
                    lane.0.push(args);
                    lane.1.push((p.enqueued, p.trace_id, ticket));
                }
                Job::Grad {
                    stack,
                    args,
                    ticket,
                } => {
                    let lane = lane_for(&mut grads, stack);
                    lane.0.push(args);
                    lane.1.push((p.enqueued, p.trace_id, ticket));
                }
            }
        }
    }
    if live > 0 {
        entry.metrics.batches.inc();
        entry.metrics.batch_sizes.record(live as u64);
        // The batch id ties each request's async track to the span of the
        // batch it rode in (the span's `id`, each request's end `arg`).
        let batch_id = if fir_trace::enabled() {
            fir_trace::next_id()
        } else {
            0
        };
        let _batch_span = fir_trace::span_with_id("serve", "batch", batch_id).with_arg(live as u64);
        for (stack, (argss, tickets)) in calls {
            run_calls(entry, &stack, &argss, tickets, batch_id);
        }
        for (stack, (argss, tickets)) in grads {
            run_grads(entry, &stack, &argss, tickets, batch_id);
        }
    }
    if inner.in_flight.fetch_sub(1, Ordering::AcqRel) == 1 {
        let _guard = inner.idle_mu.lock().unwrap();
        inner.idle_cv.notify_all();
    }
}

/// The error every ticket of a batch receives when the engine call
/// panicked (contained by `catch_unwind`): the server stays up, the
/// requests fail loudly instead of hanging their clients.
fn panic_error(fn_key: &str) -> ServeError {
    ServeError::Internal {
        what: format!("batch execution for {fn_key:?} panicked"),
    }
}

fn resolve_one<T>(
    entry: &FnEntry,
    enqueued: Instant,
    trace_id: u64,
    batch_id: u64,
    ticket: &TicketState<T>,
    result: Result<T, ServeError>,
) {
    if result.is_ok() {
        entry.metrics.completed.inc();
    } else {
        entry.metrics.failed.inc();
    }
    entry
        .metrics
        .latency_us
        .record(enqueued.elapsed().as_micros().min(u64::MAX as u128) as u64);
    fir_trace::async_end("serve", "request", trace_id, batch_id);
    ticket.fulfill(result);
}

fn run_calls(
    entry: &FnEntry,
    stack: &[Transform],
    argss: &[Vec<Value>],
    tickets: Vec<Slot<Vec<Value>>>,
    batch_id: u64,
) {
    // Both backends catch residual panics, but a panic escaping here
    // would strand every ticket of the batch (clients and shutdown would
    // wait forever) — contain it and fail the requests instead.
    let results = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // The derived program compiles once per (key, stack) and is
        // answered from the engine cache on every later batch.
        entry
            .cf
            .transform(stack)
            .map(|cf| cf.call_batch_fused(argss))
    }));
    match results {
        Ok(Ok(results)) => {
            for ((enqueued, tid, ticket), result) in tickets.into_iter().zip(results) {
                resolve_one(
                    entry,
                    enqueued,
                    tid,
                    batch_id,
                    &ticket,
                    result.map_err(ServeError::Exec),
                );
            }
        }
        // Transform-level failure (the stack does not apply to this
        // function): every request in the lane fails the same way.
        Ok(Err(e)) => {
            for (enqueued, tid, ticket) in tickets {
                resolve_one(
                    entry,
                    enqueued,
                    tid,
                    batch_id,
                    &ticket,
                    Err(ServeError::Exec(e.clone())),
                );
            }
        }
        Err(_) => {
            for (enqueued, tid, ticket) in tickets {
                resolve_one(
                    entry,
                    enqueued,
                    tid,
                    batch_id,
                    &ticket,
                    Err(panic_error(&entry.key)),
                );
            }
        }
    }
}

fn run_grads(
    entry: &FnEntry,
    stack: &[Transform],
    argss: &[Vec<Value>],
    tickets: Vec<Slot<GradOutput>>,
    batch_id: u64,
) {
    let results = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        entry
            .cf
            .transform(stack)
            .and_then(|cf| cf.grad_batch_fused(argss))
    }));
    match results {
        Ok(Ok(results)) => {
            for ((enqueued, tid, ticket), result) in tickets.into_iter().zip(results) {
                resolve_one(
                    entry,
                    enqueued,
                    tid,
                    batch_id,
                    &ticket,
                    result.map_err(ServeError::Exec),
                );
            }
        }
        // Function-level failure (the stack does not apply, vjp does not
        // compile, nothing to seed): every request fails the same way.
        Ok(Err(e)) => {
            for (enqueued, tid, ticket) in tickets {
                resolve_one(
                    entry,
                    enqueued,
                    tid,
                    batch_id,
                    &ticket,
                    Err(ServeError::Exec(e.clone())),
                );
            }
        }
        Err(_) => {
            for (enqueued, tid, ticket) in tickets {
                resolve_one(
                    entry,
                    enqueued,
                    tid,
                    batch_id,
                    &ticket,
                    Err(panic_error(&entry.key)),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::Builder;
    use fir::types::Type;

    fn dot() -> Fun {
        let mut b = Builder::new();
        b.build_fun("dot", &[Type::arr_f64(1), Type::arr_f64(1)], |b, ps| {
            let prods = b.map1(Type::arr_f64(1), &[ps[0], ps[1]], |b, es| {
                vec![b.fmul(es[0].into(), es[1].into())]
            });
            vec![b.sum(prods).into()]
        })
    }

    fn dot_args(x: f64) -> Vec<Value> {
        vec![
            Value::from(vec![x, 2.0, 3.0]),
            Value::from(vec![4.0, 5.0, 6.0]),
        ]
    }

    fn server() -> Server {
        ServerBuilder::new(Engine::new())
            .register("dot", &dot())
            .build()
            .unwrap()
    }

    #[test]
    fn call_and_grad_resolve_with_engine_parity() {
        let srv = server();
        let out = srv.call("dot", dot_args(1.0)).unwrap();
        assert_eq!(out[0].as_f64(), 32.0);
        let g = srv.grad("dot", dot_args(1.0)).unwrap();
        assert_eq!(g.scalar(), 32.0);
        assert_eq!(g.grads[0].as_arr().f64s(), &[4.0, 5.0, 6.0]);
        let m = srv.shutdown();
        assert_eq!(m.fns[0].completed, 2);
        assert_eq!(m.fns[0].failed, 0);
        assert!(m.fns[0].batches >= 1);
    }

    #[test]
    fn unknown_keys_and_shutdown_are_rejected() {
        let srv = server();
        match srv.call("nope", vec![]) {
            Err(ServeError::UnknownFn { fn_key, known }) => {
                assert_eq!(fn_key, "nope");
                assert_eq!(known, vec!["dot".to_string()]);
            }
            other => panic!("expected UnknownFn, got {other:?}"),
        }
        srv.shutdown();
        assert_eq!(
            srv.submit(Request::new("dot", dot_args(1.0))).err(),
            Some(ServeError::ShuttingDown)
        );
    }

    #[test]
    fn duplicate_keys_fail_at_build() {
        let err = ServerBuilder::new(Engine::new())
            .register("dot", &dot())
            .register("dot", &dot())
            .build()
            .expect_err("duplicate key must be rejected");
        assert!(matches!(err, ServeError::Config { .. }), "{err}");
    }

    #[test]
    fn a_bad_request_does_not_fail_its_batchmates() {
        // A long max_wait coalesces the three requests into one batch.
        let srv = ServerBuilder::new(Engine::new())
            .batch_policy(BatchPolicy {
                max_batch_size: 8,
                max_wait: Duration::from_millis(100),
            })
            .register("dot", &dot())
            .build()
            .unwrap();
        let good1 = srv.submit(Request::new("dot", dot_args(1.0))).unwrap();
        let bad = srv
            .submit(Request::new("dot", vec![Value::F64(13.0)]))
            .unwrap();
        let good2 = srv.submit(Request::new("dot", dot_args(10.0))).unwrap();
        assert_eq!(good1.wait().unwrap()[0].as_f64(), 32.0);
        assert!(matches!(bad.wait(), Err(ServeError::Exec(_))));
        assert_eq!(good2.wait().unwrap()[0].as_f64(), 68.0);
        let m = srv.shutdown();
        assert_eq!((m.fns[0].completed, m.fns[0].failed), (2, 1));
        // One coalesced batch of three (the dispatcher may legitimately
        // cut earlier under load, so allow 1..=3).
        assert!((1..=3).contains(&m.fns[0].batches));
    }

    #[test]
    fn full_queues_shed_with_overloaded() {
        // max_wait keeps the dispatcher asleep while we overfill.
        let srv = ServerBuilder::new(Engine::new())
            .batch_policy(BatchPolicy {
                max_batch_size: 64,
                max_wait: Duration::from_millis(250),
            })
            .queue_capacity(2)
            .register("dot", &dot())
            .build()
            .unwrap();
        let mut tickets = Vec::new();
        let mut shed = 0;
        for i in 0..6 {
            match srv.submit(Request::new("dot", dot_args(i as f64))) {
                Ok(t) => tickets.push(t),
                Err(ServeError::Overloaded { fn_key, capacity }) => {
                    assert_eq!((fn_key.as_str(), capacity), ("dot", 2));
                    shed += 1;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(shed >= 1, "capacity-2 queue must shed some of 6 submits");
        // Admitted requests still resolve (shutdown drains the queue).
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        let m = srv.shutdown();
        assert_eq!(m.fns[0].shed, shed);
    }

    #[test]
    fn zero_deadline_requests_expire_instead_of_executing() {
        let srv = ServerBuilder::new(Engine::new())
            .batch_policy(BatchPolicy {
                max_batch_size: 8,
                max_wait: Duration::from_millis(20),
            })
            .register("dot", &dot())
            .build()
            .unwrap();
        let t = srv
            .submit(Request::new("dot", dot_args(1.0)).with_deadline(Duration::ZERO))
            .unwrap();
        match t.wait() {
            Err(ServeError::DeadlineExceeded { fn_key, .. }) => assert_eq!(fn_key, "dot"),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let m = srv.shutdown();
        assert_eq!(m.fns[0].expired, 1);
        assert_eq!(m.fns[0].completed, 0);
    }

    #[test]
    fn transformed_requests_resolve_against_the_engine_transform() {
        // One server, a long max_wait so same-stack requests coalesce.
        let engine = Engine::new();
        let srv = ServerBuilder::new(engine.clone())
            .batch_policy(BatchPolicy {
                max_batch_size: 8,
                max_wait: Duration::from_millis(50),
            })
            .register("dot", &dot())
            .build()
            .unwrap();
        let reference = engine.compile(&dot()).unwrap();
        // A [Vjp] request passes explicit seeds and gets primal+adjoints.
        let mut seeded = dot_args(1.0);
        seeded.push(Value::F64(1.0));
        let vjp_t = srv
            .submit(Request::new("dot", seeded.clone()).with_transforms([Transform::Vjp]))
            .unwrap();
        // An untransformed request from the same window batches separately.
        let plain_t = srv.submit(Request::new("dot", dot_args(1.0))).unwrap();
        let want = reference.vjp().unwrap().call(&seeded).unwrap();
        let got = vjp_t.wait().unwrap();
        assert_eq!(got.len(), want.len());
        for (w, g) in want.iter().zip(&got) {
            match (w, g) {
                (Value::F64(a), Value::F64(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                (Value::Arr(a), Value::Arr(b)) => assert_eq!(a.f64s(), b.f64s()),
                other => panic!("unexpected pair {other:?}"),
            }
        }
        assert_eq!(plain_t.wait().unwrap()[0].as_f64(), 32.0);
        srv.shutdown();
    }

    #[test]
    fn a_stack_that_does_not_apply_fails_its_own_tickets_only() {
        // vmap of a nullary function cannot derive: the transformed
        // request resolves with the derivation error while plain requests
        // to the same key keep succeeding.
        let mut b = Builder::new();
        let konst = b.build_fun("konst", &[], |_, _| vec![fir::ir::Atom::f64(7.0)]);
        let srv = ServerBuilder::new(Engine::new())
            .register("konst", &konst)
            .build()
            .unwrap();
        let doomed = srv
            .submit(Request::new("konst", vec![]).with_transforms([Transform::Vmap]))
            .unwrap();
        let fine = srv.submit(Request::new("konst", vec![])).unwrap();
        assert!(matches!(doomed.wait(), Err(ServeError::Exec(_))));
        assert_eq!(fine.wait().unwrap()[0].as_f64(), 7.0);
        srv.shutdown();
    }

    #[test]
    fn mixed_stacks_batch_homogeneously() {
        // Same function, two different stacks + plain calls submitted in
        // one wait window: every ticket resolves with its own stack's
        // result (the cut never mixes stacks into one engine call).
        let engine = Engine::new();
        let srv = ServerBuilder::new(engine.clone())
            .batch_policy(BatchPolicy {
                max_batch_size: 16,
                max_wait: Duration::from_millis(80),
            })
            .register("dot", &dot())
            .build()
            .unwrap();
        let reference = engine.compile(&dot()).unwrap();
        let mut tickets = Vec::new();
        for i in 0..4 {
            let args = dot_args(i as f64);
            let mut seeded = args.clone();
            seeded.push(Value::F64(1.0));
            tickets.push((
                args.clone(),
                srv.submit(Request::new("dot", args.clone())).unwrap(),
                srv.submit(Request::new("dot", seeded).with_transforms([Transform::Vjp]))
                    .unwrap(),
            ));
        }
        for (args, plain, vjp) in tickets {
            let want = reference.call(&args).unwrap();
            assert_eq!(
                plain.wait().unwrap()[0].as_f64().to_bits(),
                want[0].as_f64().to_bits()
            );
            let g = reference.grad(&args).unwrap();
            let got = vjp.wait().unwrap();
            assert_eq!(got[0].as_f64().to_bits(), g.scalar().to_bits());
            assert_eq!(got[1].as_arr().f64s(), g.grads[0].as_arr().f64s());
        }
        srv.shutdown();
    }

    #[test]
    fn registered_fns_share_the_engine_cache() {
        let engine = Engine::new();
        let srv = ServerBuilder::new(engine.clone())
            .register("a", &dot())
            .register("b", &dot()) // structurally identical: cache hit
            .build()
            .unwrap();
        assert!(engine.cache_stats().hits >= 1);
        srv.shutdown();
    }
}
