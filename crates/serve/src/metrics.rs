//! Lock-free serving metrics: counters, gauges, and log-scaled
//! histograms, exported as a machine-readable snapshot.
//!
//! Every instrument is a plain atomic (no locks on the request path, no
//! external dependencies). Histograms bucket by powers of two — bucket
//! `i` covers `[2^(i-1), 2^i)` of the recorded unit (microseconds for
//! latency, requests for batch sizes) — so a record is one `fetch_add`
//! and percentile queries are a cumulative scan over 40 buckets. Reported
//! percentiles are the *upper bound* of the bucket the rank falls in
//! (conservative: never under-reports).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use firvm::pool::PoolUtilization;

/// Number of power-of-two histogram buckets. Bucket 39 tops out at
/// 2^39 µs ≈ 6.4 days — effectively unbounded for request latencies.
const BUCKETS: usize = 40;

/// A monotonically increasing lock-free counter.
#[derive(Debug, Default)]
pub(crate) struct Counter(AtomicU64);

impl Counter {
    pub(crate) fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous gauge (queue depth).
#[derive(Debug, Default)]
pub(crate) struct Gauge(AtomicUsize);

impl Gauge {
    pub(crate) fn set(&self, v: usize) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub(crate) fn get(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free power-of-two histogram with exact count/sum/max.
pub(crate) struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

fn bucket_of(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

impl Histogram {
    pub(crate) fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a histogram, with percentile queries.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// The value at quantile `q` in `[0, 1]`, reported as the upper bound
    /// of the power-of-two bucket the rank lands in (0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket i covers [2^(i-1), 2^i); report the upper bound,
                // clipped to the exact observed max.
                return (1u64 << i).min(self.max.max(1));
            }
        }
        self.max
    }

    /// The arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The non-empty buckets as `(upper_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| (1u64 << i, *n))
            .collect()
    }

    /// The histogram of only the values recorded *after* `earlier` was
    /// taken (both snapshots of the same monotonically growing
    /// histogram) — how a controller windows cumulative counters into a
    /// recent-interval view. `max` is carried from `self` (the underlying
    /// histogram only tracks the all-time max), so windowed quantiles
    /// stay conservative.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }

    /// Combine two snapshots bucketwise (e.g. the same function's
    /// latency across engine shards).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
            count: self.count + other.count,
            sum: self.sum + other.sum,
            max: self.max.max(other.max),
        }
    }
}

// ---------------------------------------------------------------------
// Per-function registry
// ---------------------------------------------------------------------

/// The live instruments of one registered function (all lock-free).
#[derive(Default)]
pub(crate) struct FnMetrics {
    pub(crate) submitted: Counter,
    pub(crate) completed: Counter,
    pub(crate) failed: Counter,
    pub(crate) shed: Counter,
    pub(crate) expired: Counter,
    pub(crate) batches: Counter,
    pub(crate) queue_depth: Gauge,
    pub(crate) batch_sizes: Histogram,
    pub(crate) latency_us: Histogram,
}

impl FnMetrics {
    pub(crate) fn snapshot(&self, fn_key: &str, uptime: Duration) -> FnMetricsSnapshot {
        let completed = self.completed.get();
        FnMetricsSnapshot {
            fn_key: fn_key.to_string(),
            submitted: self.submitted.get(),
            completed,
            failed: self.failed.get(),
            shed: self.shed.get(),
            expired: self.expired.get(),
            batches: self.batches.get(),
            queue_depth: self.queue_depth.get(),
            batch_sizes: self.batch_sizes.snapshot(),
            latency_us: self.latency_us.snapshot(),
            throughput_rps: completed as f64 / uptime.as_secs_f64().max(1e-9),
        }
    }
}

/// A point-in-time copy of one function's serving metrics.
#[derive(Debug, Clone)]
pub struct FnMetricsSnapshot {
    /// The key the function was registered under.
    pub fn_key: String,
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests whose ticket resolved `Ok`.
    pub completed: u64,
    /// Requests whose ticket resolved `Err` at execution.
    pub failed: u64,
    /// Requests shed at admission (queue full).
    pub shed: u64,
    /// Requests dropped at the batch cut because their deadline passed.
    pub expired: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Queue depth when the snapshot was taken.
    pub queue_depth: usize,
    /// Distribution of executed batch sizes.
    pub batch_sizes: HistogramSnapshot,
    /// Queue+execution latency per resolved request, in microseconds.
    pub latency_us: HistogramSnapshot,
    /// Completed requests per second of server uptime.
    pub throughput_rps: f64,
}

/// Network-tier counters: filled in by the `fir-net` front-end, `None`
/// for in-process servers.
#[derive(Debug, Clone, Default)]
pub struct NetStatsSnapshot {
    /// Connections the listener has accepted.
    pub connections_accepted: u64,
    /// Connections currently open.
    pub connections_active: u64,
    /// Connections that have closed (either side).
    pub connections_closed: u64,
    /// Request frames decoded off the wire.
    pub frames_received: u64,
    /// Response frames written to the wire.
    pub frames_sent: u64,
    /// Frames or requests rejected with a protocol-level error.
    pub protocol_errors: u64,
    /// Policy changes applied by the adaptive batching controller.
    pub adaptive_adjustments: u64,
    /// One entry per tenant that has submitted at least one request.
    pub tenants: Vec<TenantCountersSnapshot>,
}

/// One tenant's admission counters.
#[derive(Debug, Clone, Default)]
pub struct TenantCountersSnapshot {
    /// The tenant name from the wire (empty: anonymous).
    pub tenant: String,
    /// Requests admitted past the tenant's quota.
    pub admitted: u64,
    /// Requests shed by the tenant's quota or fairness cap.
    pub shed: u64,
    /// Requests admitted but not yet responded to.
    pub in_flight: u64,
}

/// A machine-readable snapshot of a whole server's metrics.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Time since the server was built.
    pub uptime: Duration,
    /// Utilization of the shared worker pool batches execute on (busy
    /// workers and queue depth at snapshot time).
    pub pool: PoolUtilization,
    /// One entry per registered function, in registration order.
    pub fns: Vec<FnMetricsSnapshot>,
    /// Execution-arena allocation counters at snapshot time
    /// ([`interp::alloc_stats`]; process-global, shared by every server in
    /// the process). `heap_allocs` and `arena_hits` are monotonic, so
    /// windowing two snapshots and dividing by completed requests yields
    /// allocations per call.
    pub alloc: interp::AllocStats,
    /// Compile-cache counters of the engine the server compiles through
    /// (`None` when the snapshot was assembled without an engine, e.g. in
    /// unit tests). Includes the persistent on-disk cache counters when
    /// the engine was built with [`fir_api::EngineBuilder::persistent_cache`],
    /// which is how warm-start deployments verify they served from disk.
    pub cache: Option<fir_api::CacheStats>,
    /// Network-tier counters (`None` unless served through `fir-net`).
    pub net: Option<NetStatsSnapshot>,
}

impl MetricsSnapshot {
    /// Total requests whose tickets resolved `Ok`, across functions.
    pub fn completed(&self) -> u64 {
        self.fns.iter().map(|f| f.completed).sum()
    }

    /// Serialize to JSON (hand-rolled; the workspace is dependency-free).
    pub fn to_json(&self) -> String {
        let esc = json_escape;
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"uptime_secs\": {:.6},\n",
            self.uptime.as_secs_f64()
        ));
        out.push_str(&format!(
            "  \"pool\": {{\"workers\": {}, \"busy_workers\": {}, \"queued_jobs\": {}}},\n",
            self.pool.workers, self.pool.busy_workers, self.pool.queued_jobs
        ));
        out.push_str(&format!(
            "  \"alloc\": {{\"heap_allocs\": {}, \"arena_hits\": {}, \"pooled_bytes\": {}, \"reserved_slots\": {}}},\n",
            self.alloc.heap_allocs,
            self.alloc.arena_hits,
            self.alloc.pooled_bytes,
            self.alloc.reserved_slots
        ));
        out.push_str("  \"functions\": [\n");
        for (i, f) in self.fns.iter().enumerate() {
            out.push_str(&format!("    {{\"fn\": \"{}\"", esc(&f.fn_key)));
            for (k, v) in [
                ("submitted", f.submitted),
                ("completed", f.completed),
                ("failed", f.failed),
                ("shed", f.shed),
                ("expired", f.expired),
                ("batches", f.batches),
                ("queue_depth", f.queue_depth as u64),
            ] {
                out.push_str(&format!(", \"{k}\": {v}"));
            }
            out.push_str(&format!(", \"throughput_rps\": {:.3}", f.throughput_rps));
            out.push_str(&format!(
                ", \"batch_size\": {{\"mean\": {:.3}, \"max\": {}}}",
                f.batch_sizes.mean(),
                f.batch_sizes.max
            ));
            out.push_str(&format!(
                ", \"latency_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"mean\": {:.1}, \"max\": {}}}",
                f.latency_us.quantile(0.50),
                f.latency_us.quantile(0.95),
                f.latency_us.quantile(0.99),
                f.latency_us.mean(),
                f.latency_us.max
            ));
            out.push('}');
            out.push_str(if i + 1 < self.fns.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]");
        if let Some(cache) = &self.cache {
            out.push_str(",\n  \"cache\": {");
            for (k, v) in [
                ("hits", cache.hits),
                ("misses", cache.misses),
                ("entries", cache.entries),
                ("evictions", cache.evictions),
            ] {
                out.push_str(&format!("\"{k}\": {v}, "));
            }
            out.push_str(&format!("\"capacity\": {}", cache.capacity));
            if let Some(p) = &cache.persistent {
                out.push_str(&format!(
                    ", \"persistent\": {{\"hits\": {}, \"misses\": {}, \"stores\": {}, \"invalidations\": {}}}",
                    p.hits, p.misses, p.stores, p.invalidations
                ));
            }
            out.push('}');
        }
        if let Some(net) = &self.net {
            out.push_str(",\n  \"net\": {");
            for (k, v) in [
                ("connections_accepted", net.connections_accepted),
                ("connections_active", net.connections_active),
                ("connections_closed", net.connections_closed),
                ("frames_received", net.frames_received),
                ("frames_sent", net.frames_sent),
                ("protocol_errors", net.protocol_errors),
                ("adaptive_adjustments", net.adaptive_adjustments),
            ] {
                out.push_str(&format!("\"{k}\": {v}, "));
            }
            out.push_str("\"tenants\": [");
            for (i, t) in net.tenants.iter().enumerate() {
                out.push_str(&format!(
                    "{{\"tenant\": \"{}\", \"admitted\": {}, \"shed\": {}, \"in_flight\": {}}}",
                    esc(&t.tenant),
                    t.admitted,
                    t.shed,
                    t.in_flight
                ));
                if i + 1 < net.tenants.len() {
                    out.push_str(", ");
                }
            }
            out.push_str("]}");
        }
        out.push_str("\n}\n");
        out
    }
}

/// Escape a string for embedding in a JSON string literal: `"` and `\`
/// get a backslash, control characters (U+0000..U+001F, the only other
/// characters JSON forbids in strings) become `\uXXXX`. Everything else —
/// including non-ASCII — passes through unchanged.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_are_bucket_upper_bounds() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.max, 100);
        // p50 rank = 50 → value 50 lands in bucket [32, 64) → 64.
        assert_eq!(s.quantile(0.5), 64);
        // p99 rank = 99 → bucket [64, 128) → 128 clipped to max 100.
        assert_eq!(s.quantile(0.99), 100);
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.nonzero_buckets().is_empty());
    }

    #[test]
    fn snapshot_json_is_machine_readable() {
        let m = FnMetrics::default();
        m.submitted.inc();
        m.completed.inc();
        m.batch_sizes.record(4);
        m.latency_us.record(100);
        let snap = MetricsSnapshot {
            uptime: Duration::from_secs(2),
            pool: PoolUtilization {
                workers: 8,
                busy_workers: 3,
                queued_jobs: 5,
            },
            fns: vec![m.snapshot("gmm \"grad\"", Duration::from_secs(2))],
            alloc: interp::AllocStats::default(),
            cache: None,
            net: None,
        };
        let json = snap.to_json();
        fir_trace::json::validate(&json).unwrap();
        assert!(json.contains("\"fn\": \"gmm \\\"grad\\\"\""), "{json}");
        assert!(json.contains("\"completed\": 1"), "{json}");
        assert!(json.contains("\"p99\": 100"), "{json}");
        assert!(json.contains("\"busy_workers\": 3"), "{json}");
        assert!(json.contains("\"queued_jobs\": 5"), "{json}");
        assert_eq!(snap.completed(), 1);
    }

    #[test]
    fn json_escaping_survives_hostile_fn_keys() {
        // Quotes, backslashes, every control character, and non-ASCII:
        // the export must stay parseable and round-trip the key exactly.
        let hostile: String = ('\u{0}'..='\u{1f}')
            .chain("\"\\/ fin€ 日本語 \u{7f}".chars())
            .collect();
        let snap = MetricsSnapshot {
            uptime: Duration::from_secs(1),
            pool: PoolUtilization::default(),
            fns: vec![FnMetrics::default().snapshot(&hostile, Duration::from_secs(1))],
            alloc: interp::AllocStats::default(),
            cache: None,
            net: None,
        };
        let parsed = fir_trace::json::parse(&snap.to_json()).unwrap();
        let fns = parsed.get("functions").unwrap().as_arr().unwrap();
        assert_eq!(fns[0].get("fn").unwrap().as_str(), Some(hostile.as_str()));
        // The escaper itself, spot-checked.
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn json_escaping_survives_hostile_tenant_names() {
        // Same hostility budget as the fn-key test, aimed at the net
        // section: the tenant name comes straight off the wire, so it
        // must round-trip the JSON export byte for byte.
        let hostile: String = ('\u{0}'..='\u{1f}')
            .chain("\"\\/ t€nant 日本語 \u{7f}".chars())
            .collect();
        let snap = MetricsSnapshot {
            uptime: Duration::from_secs(1),
            pool: PoolUtilization::default(),
            fns: vec![FnMetrics::default().snapshot("f", Duration::from_secs(1))],
            alloc: interp::AllocStats::default(),
            cache: None,
            net: Some(NetStatsSnapshot {
                connections_accepted: 3,
                frames_received: 7,
                tenants: vec![
                    TenantCountersSnapshot {
                        tenant: hostile.clone(),
                        admitted: 5,
                        shed: 2,
                        in_flight: 1,
                    },
                    TenantCountersSnapshot::default(),
                ],
                ..Default::default()
            }),
        };
        let json = snap.to_json();
        let parsed = fir_trace::json::parse(&json).unwrap();
        let net = parsed.get("net").unwrap();
        assert_eq!(net.get("connections_accepted").unwrap().as_num(), Some(3.0));
        let tenants = net.get("tenants").unwrap().as_arr().unwrap();
        assert_eq!(
            tenants[0].get("tenant").unwrap().as_str(),
            Some(hostile.as_str())
        );
        assert_eq!(tenants[0].get("shed").unwrap().as_num(), Some(2.0));
        assert_eq!(tenants[1].get("tenant").unwrap().as_str(), Some(""));
    }

    #[test]
    fn histogram_windows_and_merges() {
        let h = Histogram::default();
        for v in [1u64, 10, 100] {
            h.record(v);
        }
        let earlier = h.snapshot();
        for v in [1000u64, 1000, 1000] {
            h.record(v);
        }
        let later = h.snapshot();
        // The window holds only the post-`earlier` records.
        let win = later.since(&earlier);
        assert_eq!((win.count, win.sum), (3, 3000));
        assert_eq!(win.quantile(0.5), 1024.min(win.max));
        // since(self) is empty; merging the window back reproduces the
        // cumulative snapshot's totals.
        let empty = later.since(&later);
        assert_eq!((empty.count, empty.sum), (0, 0));
        assert_eq!(empty.quantile(0.99), 0);
        let merged = earlier.merge(&win);
        assert_eq!((merged.count, merged.sum, merged.max), (6, 3111, 1000));
    }

    #[test]
    fn single_value_histogram_quantiles() {
        let h = Histogram::default();
        h.record(37);
        let s = h.snapshot();
        assert_eq!((s.count, s.sum, s.max), (1, 37, 37));
        // One value: every quantile is that value's bucket bound clipped
        // to the observed max — i.e. exactly 37.
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 37, "q={q}");
        }
        assert_eq!(s.mean(), 37.0);
        assert_eq!(s.nonzero_buckets(), vec![(64, 1)]);
    }

    #[test]
    fn top_bucket_saturates_without_overflow() {
        let h = Histogram::default();
        // Values past 2^39 all land in the last bucket; quantiles report
        // its lower power-of-two bound clipped to the observed max.
        h.record(u64::MAX / 2);
        h.record(u64::MAX / 2);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX / 2);
        assert_eq!(s.quantile(0.99), 1u64 << (BUCKETS - 1));
        assert_eq!(s.nonzero_buckets(), vec![(1u64 << (BUCKETS - 1), 2)]);
    }
}
