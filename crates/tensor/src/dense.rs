//! Dense 2-D tensors (row-major) with the small set of operations the
//! PyTorch-style baseline needs. Matrix multiplication is parallelised over
//! row blocks with OS threads, mirroring an eager tensor framework's use of
//! a multi-threaded BLAS.

use std::sync::Arc;

/// A dense row-major matrix (vectors are `n × 1` or `1 × n`).
#[derive(Debug, Clone)]
pub struct Tensor {
    pub rows: usize,
    pub cols: usize,
    data: Arc<Vec<f64>>,
}

impl Tensor {
    pub fn new(rows: usize, cols: usize, data: Vec<f64>) -> Tensor {
        assert_eq!(rows * cols, data.len(), "tensor shape/data mismatch");
        Tensor {
            rows,
            cols,
            data: Arc::new(data),
        }
    }

    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor::new(rows, cols, vec![0.0; rows * cols])
    }

    pub fn scalar(x: f64) -> Tensor {
        Tensor::new(1, 1, vec![x])
    }

    pub fn data(&self) -> &[f64] {
        &self.data
    }

    pub fn numel(&self) -> usize {
        self.rows * self.cols
    }

    pub fn item(&self) -> f64 {
        assert_eq!(self.numel(), 1, "item() on non-scalar tensor");
        self.data[0]
    }

    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    fn same_shape(&self, other: &Tensor) -> bool {
        self.rows == other.rows && self.cols == other.cols
    }

    pub fn map(&self, f: impl Fn(f64) -> f64) -> Tensor {
        Tensor::new(
            self.rows,
            self.cols,
            self.data.iter().map(|x| f(*x)).collect(),
        )
    }

    pub fn zip(&self, other: &Tensor, f: impl Fn(f64, f64) -> f64) -> Tensor {
        assert!(self.same_shape(other), "shape mismatch in elementwise op");
        Tensor::new(
            self.rows,
            self.cols,
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| f(*a, *b))
                .collect(),
        )
    }

    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    pub fn scale(&self, s: f64) -> Tensor {
        self.map(|x| x * s)
    }

    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    pub fn transpose(&self) -> Tensor {
        let mut out = vec![0.0; self.numel()];
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        Tensor::new(self.cols, self.rows, out)
    }

    /// Broadcast a column vector (`rows × 1`) and a row vector (`1 × cols`)
    /// onto this matrix: `out[r,c] = self[r,c] + col[r] + row[c]`.
    pub fn add_col_row(&self, col: &Tensor, row: &Tensor) -> Tensor {
        assert_eq!(col.rows, self.rows);
        assert_eq!(row.cols, self.cols);
        let mut out = vec![0.0; self.numel()];
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[r * self.cols + c] = self.data[r * self.cols + c] + col.data[r] + row.data[c];
            }
        }
        Tensor::new(self.rows, self.cols, out)
    }

    /// Row-wise minimum, returning the values (`rows × 1`) and argmin
    /// column indices.
    pub fn min_dim1(&self) -> (Tensor, Vec<usize>) {
        let mut vals = Vec::with_capacity(self.rows);
        let mut args = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let (mut bi, mut bv) = (0usize, f64::INFINITY);
            for (c, x) in row.iter().enumerate() {
                if *x < bv {
                    bv = *x;
                    bi = c;
                }
            }
            vals.push(bv);
            args.push(bi);
        }
        (Tensor::new(self.rows, 1, vals), args)
    }

    /// Row-wise log-sum-exp (`rows × 1`).
    pub fn logsumexp_dim1(&self) -> Tensor {
        let mut out = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let m = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let s: f64 = row.iter().map(|x| (x - m).exp()).sum();
            out.push(m + s.ln());
        }
        Tensor::new(self.rows, 1, out)
    }

    /// Row-wise sum of squares (`rows × 1`).
    pub fn row_sq_norms(&self) -> Tensor {
        let mut out = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            out.push(row.iter().map(|x| x * x).sum());
        }
        Tensor::new(self.rows, 1, out)
    }

    /// Dense matrix multiplication, parallelised over row blocks.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let a = &self.data;
        let b = &other.data;
        let nthreads = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(4);
        let rows_per = n.div_ceil(nthreads.max(1)).max(1);
        let mut out = vec![0.0; n * m];
        if n * k * m < 64 * 64 * 64 {
            matmul_block(a, b, &mut out, 0, n, k, m);
        } else {
            std::thread::scope(|s| {
                let mut rest: &mut [f64] = &mut out;
                let mut lo = 0usize;
                let mut handles = Vec::new();
                while lo < n {
                    let hi = (lo + rows_per).min(n);
                    let (chunk, tail) = rest.split_at_mut((hi - lo) * m);
                    rest = tail;
                    let lo_c = lo;
                    handles.push(s.spawn(move || {
                        matmul_block_into(a, b, chunk, lo_c, hi, k, m);
                    }));
                    lo = hi;
                }
                for h in handles {
                    h.join().unwrap();
                }
            });
        }
        Tensor::new(n, m, out)
    }
}

fn matmul_block(a: &[f64], b: &[f64], out: &mut [f64], lo: usize, hi: usize, k: usize, m: usize) {
    for r in lo..hi {
        for kk in 0..k {
            let av = a[r * k + kk];
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * m..(kk + 1) * m];
            let orow = &mut out[r * m..(r + 1) * m];
            for c in 0..m {
                orow[c] += av * brow[c];
            }
        }
    }
}

fn matmul_block_into(
    a: &[f64],
    b: &[f64],
    chunk: &mut [f64],
    lo: usize,
    hi: usize,
    k: usize,
    m: usize,
) {
    for (ri, r) in (lo..hi).enumerate() {
        for kk in 0..k {
            let av = a[r * k + kk];
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * m..(kk + 1) * m];
            let orow = &mut chunk[ri * m..(ri + 1) * m];
            for c in 0..m {
                orow[c] += av * brow[c];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Tensor::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::new(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn broadcast_and_reductions() {
        let x = Tensor::new(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let col = Tensor::new(2, 1, vec![10.0, 20.0]);
        let row = Tensor::new(1, 2, vec![100.0, 200.0]);
        let y = x.add_col_row(&col, &row);
        assert_eq!(y.data(), &[111.0, 212.0, 123.0, 224.0]);
        let (mins, args) = y.min_dim1();
        assert_eq!(mins.data(), &[111.0, 123.0]);
        assert_eq!(args, vec![0, 0]);
        assert!((x.logsumexp_dim1().data()[0] - (1f64.exp() + 2f64.exp()).ln()).abs() < 1e-12);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose().transpose();
        assert_eq!(a.data(), t.data());
    }
}
