//! An eager, operator-granular autograd tape over dense/CSR tensors — the
//! PyTorch-like baseline of the evaluation.
//!
//! Every operation executes immediately and records a node on a dynamic
//! tape; `backward` walks the tape in reverse, materialising one gradient
//! tensor per node. This reproduces the cost profile the paper attributes
//! to PyTorch: per-operator dispatch, materialised intermediates, and
//! operator-granular adjoints with no cross-operator fusion.

use std::cell::RefCell;

use crate::dense::Tensor;
use crate::sparse::CsrMatrix;

type BackFn = Box<dyn Fn(&Tensor, &[Tensor]) -> Vec<Tensor>>;

struct Node {
    value: Tensor,
    parents: Vec<usize>,
    backward: Option<BackFn>,
}

/// A handle to a value on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(pub usize);

/// The autograd graph / tape.
#[derive(Default)]
pub struct Graph {
    nodes: RefCell<Vec<Node>>,
}

impl Graph {
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Number of recorded nodes (a proxy for tape size).
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&self, value: Tensor, parents: Vec<usize>, backward: Option<BackFn>) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node {
            value,
            parents,
            backward,
        });
        Var(nodes.len() - 1)
    }

    /// The current value of a variable.
    pub fn value(&self, v: Var) -> Tensor {
        self.nodes.borrow()[v.0].value.clone()
    }

    /// Introduce a leaf tensor.
    pub fn leaf(&self, t: Tensor) -> Var {
        self.push(t, vec![], None)
    }

    fn unary(
        &self,
        a: Var,
        value: Tensor,
        back: impl Fn(&Tensor, &[Tensor]) -> Vec<Tensor> + 'static,
    ) -> Var {
        self.push(value, vec![a.0], Some(Box::new(back)))
    }

    fn binary(
        &self,
        a: Var,
        b: Var,
        value: Tensor,
        back: impl Fn(&Tensor, &[Tensor]) -> Vec<Tensor> + 'static,
    ) -> Var {
        self.push(value, vec![a.0, b.0], Some(Box::new(back)))
    }

    pub fn add(&self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(&self.value(b));
        self.binary(a, b, v, |g, _| vec![g.clone(), g.clone()])
    }

    pub fn sub(&self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(&self.value(b));
        self.binary(a, b, v, |g, _| vec![g.clone(), g.scale(-1.0)])
    }

    pub fn mul(&self, a: Var, b: Var) -> Var {
        let v = self.value(a).mul(&self.value(b));
        self.binary(a, b, v, |g, ps| vec![g.mul(&ps[1]), g.mul(&ps[0])])
    }

    pub fn scale(&self, a: Var, s: f64) -> Var {
        let v = self.value(a).scale(s);
        self.unary(a, v, move |g, _| vec![g.scale(s)])
    }

    pub fn exp(&self, a: Var) -> Var {
        let v = self.value(a).map(f64::exp);
        self.unary(a, v.clone(), move |g, _| vec![g.mul(&v)])
    }

    pub fn ln(&self, a: Var) -> Var {
        let v = self.value(a).map(f64::ln);
        self.unary(a, v, |g, ps| vec![g.zip(&ps[0], |gi, ai| gi / ai)])
    }

    pub fn tanh(&self, a: Var) -> Var {
        let v = self.value(a).map(f64::tanh);
        let vc = v.clone();
        self.unary(a, v, move |g, _| {
            vec![g.zip(&vc, |gi, ti| gi * (1.0 - ti * ti))]
        })
    }

    pub fn sigmoid(&self, a: Var) -> Var {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        let vc = v.clone();
        self.unary(a, v, move |g, _| {
            vec![g.zip(&vc, |gi, si| gi * si * (1.0 - si))]
        })
    }

    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let va = self.value(a);
        let vb = self.value(b);
        let v = va.matmul(&vb);
        self.binary(a, b, v, |g, ps| {
            vec![g.matmul(&ps[1].transpose()), ps[0].transpose().matmul(g)]
        })
    }

    /// Matrix transpose.
    pub fn transpose(&self, a: Var) -> Var {
        let v = self.value(a).transpose();
        self.unary(a, v, |g, _| vec![g.transpose()])
    }

    /// Row-wise sum: `[r × c] -> [r × 1]`.
    pub fn sum_dim1(&self, a: Var) -> Var {
        let va = self.value(a);
        let mut out = vec![0.0; va.rows];
        for r in 0..va.rows {
            for c in 0..va.cols {
                out[r] += va.get(r, c);
            }
        }
        let cols = va.cols;
        let v = Tensor::new(va.rows, 1, out);
        self.unary(a, v, move |g, ps| {
            let x = &ps[0];
            let mut out = vec![0.0; x.numel()];
            for r in 0..x.rows {
                for c in 0..cols {
                    out[r * cols + c] = g.get(r, 0);
                }
            }
            vec![Tensor::new(x.rows, x.cols, out)]
        })
    }

    /// Sum of all elements (scalar result).
    pub fn sum(&self, a: Var) -> Var {
        let va = self.value(a);
        let (r, c) = (va.rows, va.cols);
        let v = Tensor::scalar(va.sum());
        self.unary(a, v, move |g, _| {
            vec![Tensor::new(r, c, vec![g.item(); r * c])]
        })
    }

    /// `x + col ⊕ row` broadcast (used for the expanded pairwise distances).
    pub fn add_col_row(&self, x: Var, col: Var, row: Var) -> Var {
        let v = self
            .value(x)
            .add_col_row(&self.value(col), &self.value(row));
        self.push(
            v,
            vec![x.0, col.0, row.0],
            Some(Box::new(|g: &Tensor, _ps: &[Tensor]| {
                let col_grad = {
                    let mut out = vec![0.0; g.rows];
                    for r in 0..g.rows {
                        for c in 0..g.cols {
                            out[r] += g.get(r, c);
                        }
                    }
                    Tensor::new(g.rows, 1, out)
                };
                let row_grad = {
                    let mut out = vec![0.0; g.cols];
                    for r in 0..g.rows {
                        for c in 0..g.cols {
                            out[c] += g.get(r, c);
                        }
                    }
                    Tensor::new(1, g.cols, out)
                };
                vec![g.clone(), col_grad, row_grad]
            })),
        )
    }

    /// Row-wise minimum (returns a `rows × 1` tensor).
    pub fn min_dim1(&self, a: Var) -> Var {
        let va = self.value(a);
        let (v, args) = va.min_dim1();
        let cols = va.cols;
        self.unary(a, v, move |g, ps| {
            let mut out = vec![0.0; ps[0].numel()];
            for (r, c) in args.iter().enumerate() {
                out[r * cols + c] += g.get(r, 0);
            }
            vec![Tensor::new(ps[0].rows, ps[0].cols, out)]
        })
    }

    /// Row-wise log-sum-exp (returns a `rows × 1` tensor).
    pub fn logsumexp_dim1(&self, a: Var) -> Var {
        let va = self.value(a);
        let v = va.logsumexp_dim1();
        let lse = v.clone();
        self.unary(a, v, move |g, ps| {
            let x = &ps[0];
            let mut out = vec![0.0; x.numel()];
            for r in 0..x.rows {
                for c in 0..x.cols {
                    let soft = (x.get(r, c) - lse.get(r, 0)).exp();
                    out[r * x.cols + c] = g.get(r, 0) * soft;
                }
            }
            vec![Tensor::new(x.rows, x.cols, out)]
        })
    }

    /// Sparse (constant) × dense (differentiable) product.
    pub fn spmm(&self, a: &CsrMatrix, b: Var) -> Var {
        let v = a.spmm(&self.value(b));
        let a = a.clone();
        self.unary(b, v, move |g, _| vec![a.spmm_transpose(g)])
    }

    /// Reverse pass: gradients of `loss` (a scalar) with respect to every
    /// node; index the result with a `Var` to read a particular gradient.
    pub fn backward(&self, loss: Var) -> Vec<Option<Tensor>> {
        let nodes = self.nodes.borrow();
        let mut grads: Vec<Option<Tensor>> = vec![None; nodes.len()];
        grads[loss.0] = Some(Tensor::scalar(1.0));
        for i in (0..=loss.0).rev() {
            let Some(g) = grads[i].clone() else { continue };
            let node = &nodes[i];
            let Some(back) = &node.backward else { continue };
            let parent_vals: Vec<Tensor> = node
                .parents
                .iter()
                .map(|p| nodes[*p].value.clone())
                .collect();
            let pgrads = back(&g, &parent_vals);
            for (p, pg) in node.parents.iter().zip(pgrads) {
                grads[*p] = Some(match grads[*p].take() {
                    None => pg,
                    Some(existing) => existing.add(&pg),
                });
            }
        }
        grads
    }

    /// Gradient of `loss` with respect to `v` (zeros if unreachable).
    pub fn grad(&self, grads: &[Option<Tensor>], v: Var) -> Tensor {
        match &grads[v.0] {
            Some(g) => g.clone(),
            None => {
                let val = self.value(v);
                Tensor::zeros(val.rows, val.cols)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_chain_gradient() {
        // loss = sum((a*b + a)^2-ish): check against hand derivative.
        let g = Graph::new();
        let a = g.leaf(Tensor::new(1, 3, vec![1.0, 2.0, 3.0]));
        let b = g.leaf(Tensor::new(1, 3, vec![4.0, 5.0, 6.0]));
        let ab = g.mul(a, b);
        let s = g.add(ab, a);
        let loss = g.sum(s);
        let grads = g.backward(loss);
        assert_eq!(g.grad(&grads, a).data(), &[5.0, 6.0, 7.0]);
        assert_eq!(g.grad(&grads, b).data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_gradient_matches_formula() {
        let g = Graph::new();
        let a = g.leaf(Tensor::new(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let b = g.leaf(Tensor::new(3, 2, vec![0.5, -1.0, 2.0, 1.5, -0.5, 1.0]));
        let c = g.matmul(a, b);
        let loss = g.sum(c);
        let grads = g.backward(loss);
        // d(sum(AB))/dA = 1·Bᵀ (rows of ones times Bᵀ): each row = column sums of Bᵀ rows.
        let da = g.grad(&grads, a);
        assert_eq!(da.rows, 2);
        assert!((da.get(0, 0) - (0.5 - 1.0)).abs() < 1e-12);
        assert!((da.get(1, 2) - (-0.5 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn logsumexp_and_min_gradients() {
        let g = Graph::new();
        let x = g.leaf(Tensor::new(2, 3, vec![0.1, 0.2, 0.3, 1.0, -1.0, 0.0]));
        let l = g.logsumexp_dim1(x);
        let loss = g.sum(l);
        let grads = g.backward(loss);
        let dx = g.grad(&grads, x);
        // Each row of the gradient is a softmax and sums to 1.
        let s0: f64 = (0..3).map(|c| dx.get(0, c)).sum();
        assert!((s0 - 1.0).abs() < 1e-12);

        let g2 = Graph::new();
        let y = g2.leaf(Tensor::new(2, 2, vec![3.0, 1.0, -2.0, 5.0]));
        let m = g2.min_dim1(y);
        let loss2 = g2.sum(m);
        let grads2 = g2.backward(loss2);
        assert_eq!(g2.grad(&grads2, y).data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn spmm_gradient() {
        let g = Graph::new();
        let csr = CsrMatrix::new(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0]);
        let d = g.leaf(Tensor::new(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let p = g.spmm(&csr, d);
        let loss = g.sum(p);
        let grads = g.backward(loss);
        // dD = Aᵀ · ones
        assert_eq!(g.grad(&grads, d).data(), &[1.0, 1.0, 3.0, 3.0, 2.0, 2.0]);
    }
}
