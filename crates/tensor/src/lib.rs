//! `tensor` — an eager, operator-granular autograd tensor library.
//!
//! This crate is the reproduction's stand-in for PyTorch in the paper's
//! evaluation (Tables 3–6): dense and CSR tensors, a small set of vectorised
//! operators, and a dynamic tape that materialises one gradient per
//! recorded operator on the backward pass. It intentionally shares the
//! qualitative cost profile of an eager framework — per-operator dispatch,
//! materialised intermediates, no cross-operator fusion — which is what the
//! paper's comparisons exercise.

// Index-based loops in this crate mirror the (row, col)/(i, j) math of
// the reference implementations; iterator rewrites would obscure it.
#![allow(clippy::needless_range_loop)]

pub mod autograd;
pub mod dense;
pub mod sparse;

pub use autograd::{Graph, Var};
pub use dense::Tensor;
pub use sparse::CsrMatrix;
