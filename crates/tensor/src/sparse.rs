//! CSR sparse matrices for the sparse k-means baseline (the paper's
//! PyTorch implementation is forced into COO by AD limitations; we keep CSR
//! and note the substitution in EXPERIMENTS.md — the measured quantity is
//! the sparse-times-dense product either way).

use crate::dense::Tensor;

/// A CSR (compressed sparse row) matrix.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    pub rows: usize,
    pub cols: usize,
    pub row_ptr: Vec<usize>,
    pub col_idx: Vec<usize>,
    pub values: Vec<f64>,
}

impl CsrMatrix {
    pub fn new(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> CsrMatrix {
        assert_eq!(row_ptr.len(), rows + 1);
        assert_eq!(col_idx.len(), values.len());
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row-wise squared norms (`rows × 1`).
    pub fn row_sq_norms(&self) -> Tensor {
        let mut out = vec![0.0; self.rows];
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                out[r] += self.values[k] * self.values[k];
            }
        }
        Tensor::new(self.rows, 1, out)
    }

    /// Sparse × dense product: `[rows × cols] · [cols × m] -> [rows × m]`.
    pub fn spmm(&self, dense: &Tensor) -> Tensor {
        assert_eq!(self.cols, dense.rows, "spmm shape mismatch");
        let m = dense.cols;
        let mut out = vec![0.0; self.rows * m];
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                let v = self.values[k];
                let drow = &dense.data()[c * m..(c + 1) * m];
                let orow = &mut out[r * m..(r + 1) * m];
                for j in 0..m {
                    orow[j] += v * drow[j];
                }
            }
        }
        Tensor::new(self.rows, m, out)
    }

    /// Transposed sparse × dense product: `Aᵀ · B`, used for the backward
    /// pass of `spmm` with respect to the dense operand.
    pub fn spmm_transpose(&self, dense: &Tensor) -> Tensor {
        assert_eq!(self.rows, dense.rows, "spmm_transpose shape mismatch");
        let m = dense.cols;
        let mut out = vec![0.0; self.cols * m];
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                let v = self.values[k];
                let drow = &dense.data()[r * m..(r + 1) * m];
                let orow = &mut out[c * m..(c + 1) * m];
                for j in 0..m {
                    orow[j] += v * drow[j];
                }
            }
        }
        Tensor::new(self.cols, m, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [[1, 0, 2], [0, 3, 0]]
        CsrMatrix::new(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0])
    }

    #[test]
    fn spmm_matches_dense() {
        let a = small();
        let d = Tensor::new(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let out = a.spmm(&d);
        assert_eq!(out.data(), &[11.0, 14.0, 9.0, 12.0]);
    }

    #[test]
    fn spmm_transpose_matches_dense_transpose() {
        let a = small();
        let d = Tensor::new(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let out = a.spmm_transpose(&d);
        // Aᵀ = [[1,0],[0,3],[2,0]]; Aᵀ·d = [[1,2],[9,12],[2,4]]
        assert_eq!(out.data(), &[1.0, 2.0, 9.0, 12.0, 2.0, 4.0]);
    }

    #[test]
    fn row_norms() {
        let a = small();
        assert_eq!(a.row_sq_norms().data(), &[5.0, 9.0]);
    }
}
