//! Free-variable analysis.
//!
//! Reverse-mode AD uses `FV(body)` to decide which adjoints a scope must
//! return (rule `vjp_body` in Fig. 3 of the paper), and the optimizer uses
//! it for dead-code elimination and for splitting map nests.

use std::collections::BTreeSet;

use crate::ir::{Atom, Body, Exp, Lambda, Stm, VarId};

/// The set of variables free in a value of the IR.
pub trait FreeVars {
    /// Insert this value's free variables into `out`, treating `bound` as
    /// already bound.
    fn free_vars_into(&self, bound: &mut BTreeSet<VarId>, out: &mut BTreeSet<VarId>);

    /// The free variables, in ascending `VarId` order.
    fn free_vars(&self) -> BTreeSet<VarId> {
        let mut bound = BTreeSet::new();
        let mut out = BTreeSet::new();
        self.free_vars_into(&mut bound, &mut out);
        out
    }
}

fn use_var(v: VarId, bound: &BTreeSet<VarId>, out: &mut BTreeSet<VarId>) {
    if !bound.contains(&v) {
        out.insert(v);
    }
}

fn use_atom(a: &Atom, bound: &BTreeSet<VarId>, out: &mut BTreeSet<VarId>) {
    if let Atom::Var(v) = a {
        use_var(*v, bound, out);
    }
}

impl FreeVars for Atom {
    fn free_vars_into(&self, bound: &mut BTreeSet<VarId>, out: &mut BTreeSet<VarId>) {
        use_atom(self, bound, out);
    }
}

impl FreeVars for Body {
    fn free_vars_into(&self, bound: &mut BTreeSet<VarId>, out: &mut BTreeSet<VarId>) {
        // Track which variables we newly bind so we can restore `bound`
        // afterwards (sibling scopes must not see them).
        let mut newly_bound = Vec::new();
        for Stm { pat, exp } in &self.stms {
            exp.free_vars_into(bound, out);
            for p in pat {
                if bound.insert(p.var) {
                    newly_bound.push(p.var);
                }
            }
        }
        for r in &self.result {
            use_atom(r, bound, out);
        }
        for v in newly_bound {
            bound.remove(&v);
        }
    }
}

impl FreeVars for Lambda {
    fn free_vars_into(&self, bound: &mut BTreeSet<VarId>, out: &mut BTreeSet<VarId>) {
        let mut newly_bound = Vec::new();
        for p in &self.params {
            if bound.insert(p.var) {
                newly_bound.push(p.var);
            }
        }
        self.body.free_vars_into(bound, out);
        for v in newly_bound {
            bound.remove(&v);
        }
    }
}

impl FreeVars for Exp {
    fn free_vars_into(&self, bound: &mut BTreeSet<VarId>, out: &mut BTreeSet<VarId>) {
        match self {
            Exp::Atom(a) | Exp::UnOp(_, a) | Exp::Iota(a) => use_atom(a, bound, out),
            Exp::BinOp(_, a, b) => {
                use_atom(a, bound, out);
                use_atom(b, bound, out);
            }
            Exp::Select { cond, t, f } => {
                use_atom(cond, bound, out);
                use_atom(t, bound, out);
                use_atom(f, bound, out);
            }
            Exp::Index { arr, idx } => {
                use_var(*arr, bound, out);
                idx.iter().for_each(|a| use_atom(a, bound, out));
            }
            Exp::Update { arr, idx, val } => {
                use_var(*arr, bound, out);
                idx.iter().for_each(|a| use_atom(a, bound, out));
                use_atom(val, bound, out);
            }
            Exp::Len(v) | Exp::Reverse(v) | Exp::Copy(v) => use_var(*v, bound, out),
            Exp::Replicate { n, val } => {
                use_atom(n, bound, out);
                use_atom(val, bound, out);
            }
            Exp::If {
                cond,
                then_br,
                else_br,
            } => {
                use_atom(cond, bound, out);
                then_br.free_vars_into(bound, out);
                else_br.free_vars_into(bound, out);
            }
            Exp::Loop {
                params,
                index,
                count,
                body,
            } => {
                for (_, init) in params {
                    use_atom(init, bound, out);
                }
                use_atom(count, bound, out);
                let mut newly_bound = Vec::new();
                for (p, _) in params {
                    if bound.insert(p.var) {
                        newly_bound.push(p.var);
                    }
                }
                if bound.insert(*index) {
                    newly_bound.push(*index);
                }
                body.free_vars_into(bound, out);
                for v in newly_bound {
                    bound.remove(&v);
                }
            }
            Exp::Map { lam, args } => {
                lam.free_vars_into(bound, out);
                args.iter().for_each(|v| use_var(*v, bound, out));
            }
            Exp::Reduce { lam, neutral, args } | Exp::Scan { lam, neutral, args } => {
                lam.free_vars_into(bound, out);
                neutral.iter().for_each(|a| use_atom(a, bound, out));
                args.iter().for_each(|v| use_var(*v, bound, out));
            }
            Exp::Redomap {
                red_lam,
                map_lam,
                neutral,
                args,
            } => {
                red_lam.free_vars_into(bound, out);
                map_lam.free_vars_into(bound, out);
                neutral.iter().for_each(|a| use_atom(a, bound, out));
                args.iter().for_each(|v| use_var(*v, bound, out));
            }
            Exp::Hist {
                num_bins,
                inds,
                vals,
                ..
            } => {
                use_atom(num_bins, bound, out);
                use_var(*inds, bound, out);
                use_var(*vals, bound, out);
            }
            Exp::Scatter { dest, inds, vals } => {
                use_var(*dest, bound, out);
                use_var(*inds, bound, out);
                use_var(*vals, bound, out);
            }
            Exp::WithAcc { arrs, lam } => {
                arrs.iter().for_each(|v| use_var(*v, bound, out));
                lam.free_vars_into(bound, out);
            }
            Exp::UpdAcc { acc, idx, val } => {
                use_var(*acc, bound, out);
                idx.iter().for_each(|a| use_atom(a, bound, out));
                use_atom(val, bound, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::types::Type;

    #[test]
    fn lambda_params_are_bound() {
        let mut b = Builder::new();
        b.begin_scope();
        let free = b.fresh(Type::F64);
        let lam = b.lambda(&[Type::F64], |b, ps| {
            let x = Atom::Var(ps[0]);
            vec![b.fmul(x, Atom::Var(free))]
        });
        let _ = b.end_scope();
        let fv = lam.free_vars();
        assert!(fv.contains(&free));
        assert!(!fv.contains(&lam.params[0].var));
        // Intermediates bound inside the lambda body are not free.
        assert_eq!(fv.len(), 1);
    }

    #[test]
    fn body_bindings_do_not_leak() {
        let mut b = Builder::new();
        let fun = b.build_fun("f", &[Type::F64], |b, ps| {
            let x = Atom::Var(ps[0]);
            let y = b.fadd(x, Atom::f64(1.0));
            vec![b.fmul(y, y)]
        });
        let fv = fun.body.free_vars();
        assert_eq!(fv.len(), 1);
        assert!(fv.contains(&fun.params[0].var));
    }

    #[test]
    fn loop_free_vars_exclude_loop_params() {
        let mut b = Builder::new();
        let fun = b.build_fun("f", &[Type::F64, Type::I64], |b, ps| {
            let x = Atom::Var(ps[0]);
            let n = Atom::Var(ps[1]);
            let r = b.loop_(&[(Type::F64, Atom::f64(0.0))], n, |b, _i, acc| {
                vec![b.fadd(acc[0].into(), x)]
            });
            vec![r[0].into()]
        });
        let loop_exp = &fun.body.stms.last().unwrap().exp;
        match loop_exp {
            Exp::Loop { params, .. } => {
                let fv = loop_exp.free_vars();
                assert!(fv.contains(&fun.params[0].var));
                assert!(!fv.contains(&params[0].0.var));
            }
            _ => unreachable!(),
        }
    }
}
