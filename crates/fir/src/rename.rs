//! Alpha-renaming: produce a copy of an IR fragment in which every *bound*
//! variable is replaced by a fresh name, leaving free variables untouched.
//!
//! Transformation passes use this when they need to inline the same lambda
//! body more than once into a single scope (e.g. the general reduce rule of
//! reverse AD composes the operator with itself), or when strip-mining
//! duplicates a loop body.

use std::collections::HashMap;

use crate::builder::Builder;
use crate::ir::{Atom, Body, Exp, Lambda, Param, Stm, VarId};

/// A renaming context: a substitution from old bound names to fresh names.
#[derive(Debug, Default, Clone)]
pub struct Renamer {
    map: HashMap<VarId, VarId>,
}

impl Renamer {
    /// An empty renamer (no substitutions yet).
    pub fn new() -> Renamer {
        Renamer::default()
    }

    /// Pre-seed a substitution (used to redirect a lambda parameter to an
    /// existing variable rather than a fresh one).
    pub fn insert(&mut self, from: VarId, to: VarId) {
        self.map.insert(from, to);
    }

    fn fresh_param(&mut self, b: &mut Builder, p: &Param) -> Param {
        let v = b.fresh(p.ty);
        self.map.insert(p.var, v);
        Param::new(v, p.ty)
    }

    fn var(&self, v: VarId) -> VarId {
        self.map.get(&v).copied().unwrap_or(v)
    }

    fn atom(&self, a: &Atom) -> Atom {
        match a {
            Atom::Var(v) => Atom::Var(self.var(*v)),
            c => *c,
        }
    }

    /// Rename a body, freshening every binding it introduces.
    pub fn body(&mut self, b: &mut Builder, body: &Body) -> Body {
        let stms = body.stms.iter().map(|s| self.stm(b, s)).collect();
        let result = body.result.iter().map(|a| self.atom(a)).collect();
        Body { stms, result }
    }

    /// Rename a statement, freshening the variables it binds.
    pub fn stm(&mut self, b: &mut Builder, s: &Stm) -> Stm {
        let exp = self.exp(b, &s.exp);
        let pat = s.pat.iter().map(|p| self.fresh_param(b, p)).collect();
        Stm { pat, exp }
    }

    /// Rename a lambda, freshening its parameters and all inner bindings.
    pub fn lambda(&mut self, b: &mut Builder, lam: &Lambda) -> Lambda {
        let params = lam.params.iter().map(|p| self.fresh_param(b, p)).collect();
        let body = self.body(b, &lam.body);
        Lambda {
            params,
            body,
            ret: lam.ret.clone(),
        }
    }

    fn exp(&mut self, b: &mut Builder, e: &Exp) -> Exp {
        match e {
            Exp::Atom(a) => Exp::Atom(self.atom(a)),
            Exp::UnOp(op, a) => Exp::UnOp(*op, self.atom(a)),
            Exp::BinOp(op, x, y) => Exp::BinOp(*op, self.atom(x), self.atom(y)),
            Exp::Select { cond, t, f } => Exp::Select {
                cond: self.atom(cond),
                t: self.atom(t),
                f: self.atom(f),
            },
            Exp::Index { arr, idx } => Exp::Index {
                arr: self.var(*arr),
                idx: idx.iter().map(|a| self.atom(a)).collect(),
            },
            Exp::Update { arr, idx, val } => Exp::Update {
                arr: self.var(*arr),
                idx: idx.iter().map(|a| self.atom(a)).collect(),
                val: self.atom(val),
            },
            Exp::Len(v) => Exp::Len(self.var(*v)),
            Exp::Iota(n) => Exp::Iota(self.atom(n)),
            Exp::Replicate { n, val } => Exp::Replicate {
                n: self.atom(n),
                val: self.atom(val),
            },
            Exp::Reverse(v) => Exp::Reverse(self.var(*v)),
            Exp::Copy(v) => Exp::Copy(self.var(*v)),
            Exp::If {
                cond,
                then_br,
                else_br,
            } => Exp::If {
                cond: self.atom(cond),
                then_br: self.body(b, then_br),
                else_br: self.body(b, else_br),
            },
            Exp::Loop {
                params,
                index,
                count,
                body,
            } => {
                let count = self.atom(count);
                let params: Vec<(Param, Atom)> = params
                    .iter()
                    .map(|(p, init)| {
                        let init = self.atom(init);
                        (self.fresh_param(b, p), init)
                    })
                    .collect();
                let new_index = b.fresh(crate::types::Type::I64);
                self.map.insert(*index, new_index);
                let body = self.body(b, body);
                Exp::Loop {
                    params,
                    index: new_index,
                    count,
                    body,
                }
            }
            Exp::Map { lam, args } => Exp::Map {
                lam: self.lambda(b, lam),
                args: args.iter().map(|v| self.var(*v)).collect(),
            },
            Exp::Reduce { lam, neutral, args } => Exp::Reduce {
                lam: self.lambda(b, lam),
                neutral: neutral.iter().map(|a| self.atom(a)).collect(),
                args: args.iter().map(|v| self.var(*v)).collect(),
            },
            Exp::Scan { lam, neutral, args } => Exp::Scan {
                lam: self.lambda(b, lam),
                neutral: neutral.iter().map(|a| self.atom(a)).collect(),
                args: args.iter().map(|v| self.var(*v)).collect(),
            },
            Exp::Redomap {
                red_lam,
                map_lam,
                neutral,
                args,
            } => Exp::Redomap {
                red_lam: self.lambda(b, red_lam),
                map_lam: self.lambda(b, map_lam),
                neutral: neutral.iter().map(|a| self.atom(a)).collect(),
                args: args.iter().map(|v| self.var(*v)).collect(),
            },
            Exp::Hist {
                op,
                num_bins,
                inds,
                vals,
            } => Exp::Hist {
                op: *op,
                num_bins: self.atom(num_bins),
                inds: self.var(*inds),
                vals: self.var(*vals),
            },
            Exp::Scatter { dest, inds, vals } => Exp::Scatter {
                dest: self.var(*dest),
                inds: self.var(*inds),
                vals: self.var(*vals),
            },
            Exp::WithAcc { arrs, lam } => Exp::WithAcc {
                arrs: arrs.iter().map(|v| self.var(*v)).collect(),
                lam: self.lambda(b, lam),
            },
            Exp::UpdAcc { acc, idx, val } => Exp::UpdAcc {
                acc: self.var(*acc),
                idx: idx.iter().map(|a| self.atom(a)).collect(),
                val: self.atom(val),
            },
        }
    }
}

/// Alpha-rename a whole function so every binder is globally unique
/// (parameters keep their names). The `vjp` transformation's redundant
/// scope re-execution re-emits statements with their original binder ids
/// into sibling scopes — legal shadowing, but passes that key on raw
/// `VarId`s (CSE, fusion, the VM's flat register allocation) need
/// uniqueness first.
pub fn uniquify_fun(fun: &crate::ir::Fun) -> crate::ir::Fun {
    let mut b = Builder::for_fun(fun);
    let mut r = Renamer::new();
    let body = r.body(&mut b, &fun.body);
    crate::ir::Fun {
        name: fun.name.clone(),
        params: fun.params.clone(),
        body,
        ret: fun.ret.clone(),
    }
}

/// Whether every binder in the function (parameters, statement patterns,
/// lambda/loop parameters, loop indices) is bound exactly once.
pub fn has_unique_binders(fun: &crate::ir::Fun) -> bool {
    use crate::ir::{Body, Exp};
    use std::collections::HashSet;

    fn exp(e: &Exp, seen: &mut HashSet<VarId>) -> bool {
        match e {
            Exp::If {
                then_br, else_br, ..
            } => body(then_br, seen) && body(else_br, seen),
            Exp::Loop {
                params,
                index,
                body: b,
                ..
            } => {
                params.iter().all(|(p, _)| seen.insert(p.var))
                    && seen.insert(*index)
                    && body(b, seen)
            }
            Exp::Map { lam, .. } | Exp::Reduce { lam, .. } | Exp::Scan { lam, .. } => {
                lambda(lam, seen)
            }
            Exp::Redomap {
                red_lam, map_lam, ..
            } => lambda(red_lam, seen) && lambda(map_lam, seen),
            Exp::WithAcc { lam, .. } => lambda(lam, seen),
            _ => true,
        }
    }
    fn lambda(l: &Lambda, seen: &mut HashSet<VarId>) -> bool {
        l.params.iter().all(|p| seen.insert(p.var)) && body(&l.body, seen)
    }
    fn body(b: &Body, seen: &mut HashSet<VarId>) -> bool {
        b.stms
            .iter()
            .all(|s| s.pat.iter().all(|p| seen.insert(p.var)) && exp(&s.exp, seen))
    }

    let mut seen = HashSet::new();
    fun.params.iter().all(|p| seen.insert(p.var)) && body(&fun.body, &mut seen)
}

/// Convenience wrapper: a fresh copy of a lambda with all bound names
/// renamed (free variables preserved).
pub fn refresh_lambda(b: &mut Builder, lam: &Lambda) -> Lambda {
    Renamer::new().lambda(b, lam)
}

/// Convenience wrapper: a fresh copy of a body.
pub fn refresh_body(b: &mut Builder, body: &Body) -> Body {
    Renamer::new().body(b, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::free_vars::FreeVars;
    use crate::types::Type;

    #[test]
    fn refreshed_lambda_keeps_free_vars_and_renames_bound() {
        let mut b = Builder::new();
        b.begin_scope();
        let free = b.fresh(Type::F64);
        let lam = b.lambda(&[Type::F64], |b, ps| {
            let t = b.fmul(ps[0].into(), Atom::Var(free));
            vec![b.fadd(t, Atom::f64(1.0))]
        });
        let _ = b.end_scope();
        let fresh = refresh_lambda(&mut b, &lam);
        assert_ne!(fresh.params[0].var, lam.params[0].var);
        assert_eq!(fresh.ret, lam.ret);
        let fv: Vec<_> = fresh.free_vars().into_iter().collect();
        assert_eq!(fv, vec![free]);
        // Inner bindings are disjoint from the original's.
        let orig_bound: Vec<_> = lam
            .body
            .stms
            .iter()
            .flat_map(|s| s.pat.iter().map(|p| p.var))
            .collect();
        for s in &fresh.body.stms {
            for p in &s.pat {
                assert!(!orig_bound.contains(&p.var));
            }
        }
    }

    #[test]
    fn refreshed_loop_renames_index() {
        let mut b = Builder::new();
        let f = b.build_fun("f", &[Type::F64, Type::I64], |b, ps| {
            let r = b.loop_(&[(Type::F64, ps[0].into())], ps[1].into(), |b, i, acc| {
                let fi = b.to_f64(i.into());
                vec![b.fadd(acc[0].into(), fi)]
            });
            vec![r[0].into()]
        });
        let body2 = refresh_body(&mut b, &f.body);
        match (&f.body.stms[0].exp, &body2.stms[0].exp) {
            (Exp::Loop { index: i1, .. }, Exp::Loop { index: i2, .. }) => assert_ne!(i1, i2),
            _ => panic!("expected loops"),
        }
    }
}
