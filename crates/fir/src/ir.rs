//! The IR proper: variables, atoms, primitive operators, expressions,
//! statements, bodies, lambdas and functions.
//!
//! The representation is in A-normal form: operands of every expression are
//! [`Atom`]s (variables or constants); compound expressions appear only on
//! the right-hand side of a statement. Bodies are sequences of statements
//! followed by a (multi-valued) result, exactly as in the paper.

use crate::types::{ScalarType, Type};

/// A variable name. Variables are identified by a `u32`; re-binding the same
/// identifier in an inner scope has shadowing semantics (the IR is purely
/// functional, so this is only a notational convenience).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl std::fmt::Display for VarId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A scalar constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Const {
    F64(f64),
    I64(i64),
    Bool(bool),
}

impl Const {
    /// The type of the constant.
    pub fn ty(&self) -> Type {
        match self {
            Const::F64(_) => Type::Scalar(ScalarType::F64),
            Const::I64(_) => Type::Scalar(ScalarType::I64),
            Const::Bool(_) => Type::Scalar(ScalarType::Bool),
        }
    }

    /// The `f64` payload, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Const::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The `i64` payload, if any.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Const::I64(x) => Some(*x),
            _ => None,
        }
    }
}

/// An atom: a variable or a constant. All operands in ANF are atoms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Atom {
    Var(VarId),
    Const(Const),
}

impl Atom {
    /// Shorthand for an `f64` constant atom.
    pub fn f64(x: f64) -> Atom {
        Atom::Const(Const::F64(x))
    }

    /// Shorthand for an `i64` constant atom.
    pub fn i64(x: i64) -> Atom {
        Atom::Const(Const::I64(x))
    }

    /// Shorthand for a `bool` constant atom.
    pub fn bool(x: bool) -> Atom {
        Atom::Const(Const::Bool(x))
    }

    /// The variable inside, if this is a variable atom.
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            Atom::Var(v) => Some(*v),
            Atom::Const(_) => None,
        }
    }

    /// The variable inside; panics on constants.
    pub fn expect_var(&self) -> VarId {
        self.as_var().expect("Atom::expect_var on a constant")
    }
}

impl From<VarId> for Atom {
    fn from(v: VarId) -> Atom {
        Atom::Var(v)
    }
}

impl From<f64> for Atom {
    fn from(x: f64) -> Atom {
        Atom::f64(x)
    }
}

impl From<i64> for Atom {
    fn from(x: i64) -> Atom {
        Atom::i64(x)
    }
}

impl From<bool> for Atom {
    fn from(x: bool) -> Atom {
        Atom::bool(x)
    }
}

/// Unary scalar primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation (f64 or i64).
    Neg,
    Sin,
    Cos,
    Exp,
    Log,
    Sqrt,
    Tanh,
    /// The logistic function `1 / (1 + exp(-x))`.
    Sigmoid,
    Abs,
    /// Multiplicative inverse `1/x`.
    Recip,
    /// Boolean negation.
    Not,
    /// Integer to float conversion.
    ToF64,
    /// Float to integer conversion (truncation).
    ToI64,
}

impl UnOp {
    /// Whether the operator maps floats to floats (and so has a derivative).
    pub fn is_float_op(self) -> bool {
        !matches!(self, UnOp::Not | UnOp::ToF64 | UnOp::ToI64)
    }
}

/// Binary scalar primitives. Arithmetic operators are overloaded over `f64`
/// and `i64`; comparisons yield `bool`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    /// `a.powf(b)` on floats, `a.pow(b)` on ints.
    Pow,
    Min,
    Max,
    /// Remainder.
    Rem,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    /// Whether the result is a boolean (comparison / logical operators).
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Neq
                | BinOp::Lt
                | BinOp::Le
                | BinOp::Gt
                | BinOp::Ge
                | BinOp::And
                | BinOp::Or
        )
    }
}

/// The restricted set of operators accepted by `reduce_by_index`
/// ([`Exp::Hist`]) and recognized as special cases when differentiating
/// `reduce` (§5.1.1 / §5.1.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    Add,
    Mul,
    Min,
    Max,
}

impl ReduceOp {
    /// The neutral element of the operator for `f64` data.
    pub fn neutral_f64(self) -> f64 {
        match self {
            ReduceOp::Add => 0.0,
            ReduceOp::Mul => 1.0,
            ReduceOp::Min => f64::INFINITY,
            ReduceOp::Max => f64::NEG_INFINITY,
        }
    }

    /// Apply the operator to two `f64` values.
    pub fn apply_f64(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Add => a + b,
            ReduceOp::Mul => a * b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    /// The corresponding scalar [`BinOp`].
    pub fn binop(self) -> BinOp {
        match self {
            ReduceOp::Add => BinOp::Add,
            ReduceOp::Mul => BinOp::Mul,
            ReduceOp::Min => BinOp::Min,
            ReduceOp::Max => BinOp::Max,
        }
    }
}

/// A typed formal parameter (of a function, lambda, loop or pattern).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Param {
    pub var: VarId,
    pub ty: Type,
}

impl Param {
    pub fn new(var: VarId, ty: Type) -> Param {
        Param { var, ty }
    }
}

/// An anonymous first-order function; lambdas appear only syntactically as
/// arguments of SOACs and `withacc` and are not values.
#[derive(Debug, Clone, PartialEq)]
pub struct Lambda {
    pub params: Vec<Param>,
    pub body: Body,
    /// Types of the values returned by `body.result`.
    pub ret: Vec<Type>,
}

/// A single binding: `let (p1, ..., pk) = exp`.
#[derive(Debug, Clone, PartialEq)]
pub struct Stm {
    pub pat: Vec<Param>,
    pub exp: Exp,
}

impl Stm {
    pub fn new(pat: Vec<Param>, exp: Exp) -> Stm {
        Stm { pat, exp }
    }
}

/// A body: a sequence of statements followed by a multi-valued result.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Body {
    pub stms: Vec<Stm>,
    pub result: Vec<Atom>,
}

impl Body {
    pub fn new(stms: Vec<Stm>, result: Vec<Atom>) -> Body {
        Body { stms, result }
    }
}

/// Expressions. Compound operands are always atoms or variables; nested
/// computation lives in the bodies of `if`, `loop` and lambdas.
#[derive(Debug, Clone, PartialEq)]
pub enum Exp {
    /// A copy/alias of an atom.
    Atom(Atom),
    /// Unary scalar primitive.
    UnOp(UnOp, Atom),
    /// Binary scalar primitive.
    BinOp(BinOp, Atom, Atom),
    /// Scalar selection `if cond then t else f` without introducing a scope.
    Select { cond: Atom, t: Atom, f: Atom },
    /// `arr[i_1, ..., i_k]` — partial indexing yields a lower-rank array.
    Index { arr: VarId, idx: Vec<Atom> },
    /// `arr with [i_1, ..., i_k] <- val` — functional in-place update.
    Update {
        arr: VarId,
        idx: Vec<Atom>,
        val: Atom,
    },
    /// Outer length of an array.
    Len(VarId),
    /// `iota n` = `[0, 1, ..., n-1] : []i64`.
    Iota(Atom),
    /// `replicate n v`.
    Replicate { n: Atom, val: Atom },
    /// Reverse an array along its outer dimension.
    Reverse(VarId),
    /// An explicit copy (used to break aliasing before in-place updates).
    Copy(VarId),
    /// `if cond then ... else ...` over full bodies (multi-valued).
    If {
        cond: Atom,
        then_br: Body,
        else_br: Body,
    },
    /// A sequential loop:
    /// `loop (p_1 = init_1, ...) for index < count do body`,
    /// where `body` returns the next values of the `p_i`.
    Loop {
        params: Vec<(Param, Atom)>,
        index: VarId,
        count: Atom,
        body: Body,
    },
    /// `map lam arrs` — the lambda consumes one element of each array.
    Map { lam: Lambda, args: Vec<VarId> },
    /// `reduce lam neutral arrs` with an associative operator.
    Reduce {
        lam: Lambda,
        neutral: Vec<Atom>,
        args: Vec<VarId>,
    },
    /// Inclusive `scan lam neutral arrs`.
    Scan {
        lam: Lambda,
        neutral: Vec<Atom>,
        args: Vec<VarId>,
    },
    /// A fused `reduce ∘ map` (the paper's *redomap*):
    /// `redomap red_lam map_lam neutral args` applies `map_lam` to each
    /// element tuple of `args` and combines the per-element results with the
    /// associative operator `red_lam`, starting from `neutral` — equivalent
    /// to `reduce red_lam neutral (map map_lam args)` without materializing
    /// the intermediate arrays. Introduced by the optimizer's
    /// producer–consumer fusion (`fir-opt`); AD lowers it back to
    /// `map` + `reduce` (see `fir::lower::unfuse`) before differentiating.
    Redomap {
        /// The combining operator: `2m` parameters (accumulators then
        /// elements) for `m` mapped results, returning `m` values.
        red_lam: Lambda,
        /// The mapped function: one parameter per element of each argument
        /// array, returning `m` values.
        map_lam: Lambda,
        neutral: Vec<Atom>,
        args: Vec<VarId>,
    },
    /// `reduce_by_index` (generalized histogram) with a recognized operator:
    /// `hist op num_bins inds vals`.
    Hist {
        op: ReduceOp,
        num_bins: Atom,
        inds: VarId,
        vals: VarId,
    },
    /// `scatter dest inds vals` — in-place scattered update of `dest`
    /// (consumed); out-of-bounds indices are ignored.
    Scatter {
        dest: VarId,
        inds: VarId,
        vals: VarId,
    },
    /// `withacc arrs lam`: temporarily turn the arrays into accumulators,
    /// run the lambda (whose first `arrs.len()` parameters are the
    /// accumulators and whose first `arrs.len()` results are the final
    /// accumulators), and return the updated arrays followed by any
    /// secondary results of the lambda.
    WithAcc { arrs: Vec<VarId>, lam: Lambda },
    /// `upd_acc acc idx val`: add `val` into the accumulator at `idx`
    /// (vectorized addition if `val` is an array), returning the accumulator.
    UpdAcc {
        acc: VarId,
        idx: Vec<Atom>,
        val: Atom,
    },
}

impl Exp {
    /// A short name for the expression constructor, for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Exp::Atom(_) => "atom",
            Exp::UnOp(..) => "unop",
            Exp::BinOp(..) => "binop",
            Exp::Select { .. } => "select",
            Exp::Index { .. } => "index",
            Exp::Update { .. } => "update",
            Exp::Len(_) => "len",
            Exp::Iota(_) => "iota",
            Exp::Replicate { .. } => "replicate",
            Exp::Reverse(_) => "reverse",
            Exp::Copy(_) => "copy",
            Exp::If { .. } => "if",
            Exp::Loop { .. } => "loop",
            Exp::Map { .. } => "map",
            Exp::Reduce { .. } => "reduce",
            Exp::Scan { .. } => "scan",
            Exp::Redomap { .. } => "redomap",
            Exp::Hist { .. } => "hist",
            Exp::Scatter { .. } => "scatter",
            Exp::WithAcc { .. } => "withacc",
            Exp::UpdAcc { .. } => "upd_acc",
        }
    }

    /// Does this expression open one or more nested scopes (bodies)?
    pub fn has_nested_bodies(&self) -> bool {
        matches!(
            self,
            Exp::If { .. }
                | Exp::Loop { .. }
                | Exp::Map { .. }
                | Exp::Reduce { .. }
                | Exp::Scan { .. }
                | Exp::Redomap { .. }
                | Exp::WithAcc { .. }
        )
    }
}

/// A top-level function.
#[derive(Debug, Clone, PartialEq)]
pub struct Fun {
    pub name: String,
    pub params: Vec<Param>,
    pub body: Body,
    /// Types of the returned values.
    pub ret: Vec<Type>,
}

impl Fun {
    /// The highest variable id used anywhere in the function (used by
    /// transformation passes to generate fresh names).
    pub fn max_var(&self) -> u32 {
        fn atom(a: &Atom, m: &mut u32) {
            if let Atom::Var(v) = a {
                *m = (*m).max(v.0);
            }
        }
        fn body(b: &Body, m: &mut u32) {
            for s in &b.stms {
                for p in &s.pat {
                    *m = (*m).max(p.var.0);
                }
                exp(&s.exp, m);
            }
            for r in &b.result {
                atom(r, m);
            }
        }
        fn lambda(l: &Lambda, m: &mut u32) {
            for p in &l.params {
                *m = (*m).max(p.var.0);
            }
            body(&l.body, m);
        }
        fn exp(e: &Exp, m: &mut u32) {
            match e {
                Exp::Atom(a) | Exp::UnOp(_, a) | Exp::Iota(a) => atom(a, m),
                Exp::BinOp(_, a, b) => {
                    atom(a, m);
                    atom(b, m);
                }
                Exp::Select { cond, t, f } => {
                    atom(cond, m);
                    atom(t, m);
                    atom(f, m);
                }
                Exp::Index { arr, idx } => {
                    *m = (*m).max(arr.0);
                    idx.iter().for_each(|a| atom(a, m));
                }
                Exp::Update { arr, idx, val } => {
                    *m = (*m).max(arr.0);
                    idx.iter().for_each(|a| atom(a, m));
                    atom(val, m);
                }
                Exp::Len(v) | Exp::Reverse(v) | Exp::Copy(v) => *m = (*m).max(v.0),
                Exp::Replicate { n, val } => {
                    atom(n, m);
                    atom(val, m);
                }
                Exp::If {
                    cond,
                    then_br,
                    else_br,
                } => {
                    atom(cond, m);
                    body(then_br, m);
                    body(else_br, m);
                }
                Exp::Loop {
                    params,
                    index,
                    count,
                    body: b,
                } => {
                    for (p, init) in params {
                        *m = (*m).max(p.var.0);
                        atom(init, m);
                    }
                    *m = (*m).max(index.0);
                    atom(count, m);
                    body(b, m);
                }
                Exp::Map { lam, args } => {
                    lambda(lam, m);
                    args.iter().for_each(|v| *m = (*m).max(v.0));
                }
                Exp::Reduce { lam, neutral, args } | Exp::Scan { lam, neutral, args } => {
                    lambda(lam, m);
                    neutral.iter().for_each(|a| atom(a, m));
                    args.iter().for_each(|v| *m = (*m).max(v.0));
                }
                Exp::Redomap {
                    red_lam,
                    map_lam,
                    neutral,
                    args,
                } => {
                    lambda(red_lam, m);
                    lambda(map_lam, m);
                    neutral.iter().for_each(|a| atom(a, m));
                    args.iter().for_each(|v| *m = (*m).max(v.0));
                }
                Exp::Hist {
                    num_bins,
                    inds,
                    vals,
                    ..
                } => {
                    atom(num_bins, m);
                    *m = (*m).max(inds.0);
                    *m = (*m).max(vals.0);
                }
                Exp::Scatter { dest, inds, vals } => {
                    *m = (*m).max(dest.0);
                    *m = (*m).max(inds.0);
                    *m = (*m).max(vals.0);
                }
                Exp::WithAcc { arrs, lam } => {
                    arrs.iter().for_each(|v| *m = (*m).max(v.0));
                    lambda(lam, m);
                }
                Exp::UpdAcc { acc, idx, val } => {
                    *m = (*m).max(acc.0);
                    idx.iter().for_each(|a| atom(a, m));
                    atom(val, m);
                }
            }
        }
        let mut m = 0;
        for p in &self.params {
            m = m.max(p.var.0);
        }
        body(&self.body, &mut m);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_conversions() {
        assert_eq!(Atom::from(2.0f64), Atom::Const(Const::F64(2.0)));
        assert_eq!(Atom::from(3i64), Atom::Const(Const::I64(3)));
        assert_eq!(Atom::from(VarId(7)), Atom::Var(VarId(7)));
        assert_eq!(Atom::Var(VarId(7)).as_var(), Some(VarId(7)));
        assert_eq!(Atom::f64(1.0).as_var(), None);
    }

    #[test]
    fn reduce_op_neutrals() {
        assert_eq!(ReduceOp::Add.neutral_f64(), 0.0);
        assert_eq!(ReduceOp::Mul.neutral_f64(), 1.0);
        assert!(ReduceOp::Min.neutral_f64().is_infinite());
        assert_eq!(ReduceOp::Max.apply_f64(2.0, 5.0), 5.0);
        assert_eq!(ReduceOp::Min.apply_f64(2.0, 5.0), 2.0);
    }

    #[test]
    fn binop_predicates() {
        assert!(BinOp::Lt.is_predicate());
        assert!(!BinOp::Add.is_predicate());
    }

    #[test]
    fn max_var_scans_nested_structures() {
        // let y = loop (acc = x0) for i < 3 do acc * acc  -- with ids spread out
        let body = Body::new(
            vec![Stm::new(
                vec![Param::new(VarId(10), Type::F64)],
                Exp::Loop {
                    params: vec![(Param::new(VarId(5), Type::F64), Atom::Var(VarId(1)))],
                    index: VarId(42),
                    count: Atom::i64(3),
                    body: Body::new(
                        vec![Stm::new(
                            vec![Param::new(VarId(6), Type::F64)],
                            Exp::BinOp(BinOp::Mul, Atom::Var(VarId(5)), Atom::Var(VarId(5))),
                        )],
                        vec![Atom::Var(VarId(6))],
                    ),
                },
            )],
            vec![Atom::Var(VarId(10))],
        );
        let f = Fun {
            name: "t".into(),
            params: vec![Param::new(VarId(1), Type::F64)],
            body,
            ret: vec![Type::F64],
        };
        assert_eq!(f.max_var(), 42);
    }
}
