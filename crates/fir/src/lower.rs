//! Whole-function lowerings on the core IR.
//!
//! Two lowerings live here today:
//!
//! * [`unfuse`] replaces every [`Exp::Redomap`] (produced by `fir-opt`
//!   producer–consumer fusion) by the equivalent `map` + `reduce` pair.
//!   The AD transformations (`futhark-ad`) have per-construct rules for
//!   `map` and `reduce` but not for their fusion, so they unfuse a
//!   function first; the derived function is re-fused when it passes
//!   through the optimization pipeline again.
//! * [`vmap`] is the vectorizing-map transform: every parameter and
//!   result type is promoted one rank ([`crate::types::Type::lift`]) and
//!   the original body becomes the lambda of a single outer `map` —
//!   `vmap f : ([B]T_1, ..., [B]T_k) -> ([B]R_1, ..., [B]R_m)`. Because
//!   types in this IR carry only rank, the derived program serves every
//!   outer length `B`. Composed with the AD transforms it yields
//!   per-example gradients and Jacobians (`vmap ∘ vjp`, `vjp ∘ vmap`).

use std::borrow::Cow;
use std::fmt;

use crate::builder::Builder;
use crate::ir::{Atom, Body, Exp, Fun, Lambda, Param, Stm, VarId};
use crate::rename::Renamer;
use crate::types::Type;

/// Replace every `redomap` in `fun` by the equivalent `map` + `reduce`
/// pair (materializing the intermediate arrays). The common no-`redomap`
/// case (every function AD derives from pre-pipeline source IR) borrows
/// the input instead of copying it.
pub fn unfuse(fun: &Fun) -> Cow<'_, Fun> {
    if !body_contains_redomap(&fun.body) {
        return Cow::Borrowed(fun);
    }
    let mut b = Builder::for_fun(fun);
    Cow::Owned(Fun {
        name: fun.name.clone(),
        params: fun.params.clone(),
        body: unfuse_body(&mut b, &fun.body),
        ret: fun.ret.clone(),
    })
}

fn body_contains_redomap(body: &Body) -> bool {
    body.stms.iter().any(|s| match &s.exp {
        Exp::Redomap { .. } => true,
        Exp::If {
            then_br, else_br, ..
        } => body_contains_redomap(then_br) || body_contains_redomap(else_br),
        Exp::Loop { body: b, .. } => body_contains_redomap(b),
        Exp::Map { lam, .. }
        | Exp::Reduce { lam, .. }
        | Exp::Scan { lam, .. }
        | Exp::WithAcc { lam, .. } => body_contains_redomap(&lam.body),
        _ => false,
    })
}

fn unfuse_body(b: &mut Builder, body: &Body) -> Body {
    let mut stms = Vec::with_capacity(body.stms.len());
    for stm in &body.stms {
        match &stm.exp {
            Exp::Redomap {
                red_lam,
                map_lam,
                neutral,
                args,
            } => {
                let red_lam = unfuse_lambda(b, red_lam);
                let map_lam = unfuse_lambda(b, map_lam);
                let tmp_pat: Vec<Param> = map_lam
                    .ret
                    .iter()
                    .map(|t| {
                        let ty = t.lift();
                        Param::new(b.fresh(ty), ty)
                    })
                    .collect();
                let tmp_vars: Vec<VarId> = tmp_pat.iter().map(|p| p.var).collect();
                stms.push(Stm::new(
                    tmp_pat,
                    Exp::Map {
                        lam: map_lam,
                        args: args.clone(),
                    },
                ));
                stms.push(Stm::new(
                    stm.pat.clone(),
                    Exp::Reduce {
                        lam: red_lam,
                        neutral: neutral.clone(),
                        args: tmp_vars,
                    },
                ));
            }
            other => stms.push(Stm::new(stm.pat.clone(), unfuse_exp(b, other))),
        }
    }
    Body::new(stms, body.result.clone())
}

fn unfuse_lambda(b: &mut Builder, lam: &Lambda) -> Lambda {
    Lambda {
        params: lam.params.clone(),
        body: unfuse_body(b, &lam.body),
        ret: lam.ret.clone(),
    }
}

fn unfuse_exp(b: &mut Builder, e: &Exp) -> Exp {
    match e {
        Exp::If {
            cond,
            then_br,
            else_br,
        } => Exp::If {
            cond: *cond,
            then_br: unfuse_body(b, then_br),
            else_br: unfuse_body(b, else_br),
        },
        Exp::Loop {
            params,
            index,
            count,
            body,
        } => Exp::Loop {
            params: params.clone(),
            index: *index,
            count: *count,
            body: unfuse_body(b, body),
        },
        Exp::Map { lam, args } => Exp::Map {
            lam: unfuse_lambda(b, lam),
            args: args.clone(),
        },
        Exp::Reduce { lam, neutral, args } => Exp::Reduce {
            lam: unfuse_lambda(b, lam),
            neutral: neutral.clone(),
            args: args.clone(),
        },
        Exp::Scan { lam, neutral, args } => Exp::Scan {
            lam: unfuse_lambda(b, lam),
            neutral: neutral.clone(),
            args: args.clone(),
        },
        Exp::WithAcc { arrs, lam } => Exp::WithAcc {
            arrs: arrs.clone(),
            lam: unfuse_lambda(b, lam),
        },
        Exp::Redomap { .. } => unreachable!("handled at the statement level"),
        other => other.clone(),
    }
}

// ---------------------------------------------------------------------
// vmap: rank-promotion of a whole function
// ---------------------------------------------------------------------

/// Why a function cannot be [`vmap`]ped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmapError {
    /// The function has no parameters, so there is nothing to map over.
    NoParams {
        /// The function name.
        fun: String,
    },
    /// The function has accumulator parameters or results; accumulators
    /// are write-only views without a liftable array type.
    Acc {
        /// The function name.
        fun: String,
    },
}

impl fmt::Display for VmapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmapError::NoParams { fun } => {
                write!(f, "`{fun}` has no parameters to vmap over")
            }
            VmapError::Acc { fun } => write!(
                f,
                "`{fun}` has accumulator parameters or results, cannot vmap"
            ),
        }
    }
}

impl std::error::Error for VmapError {}

/// Derive the vectorized-map transform of `fun`: every parameter and
/// result type promoted one rank, the body wrapped in one outer `map`.
///
/// ```text
///   f      : (p_1: T_1, ..., p_k: T_k) -> (R_1, ..., R_m)
///   vmap f : ([B]T_1, ..., [B]T_k)     -> ([B]R_1, ..., [B]R_m)
///          = \xs_1 ... xs_k. map (\e_1 ... e_k. f-body) xs_1 ... xs_k
/// ```
///
/// Per-element arithmetic is the original body's, evaluated in the same
/// order, so element `i` of every result is bitwise identical to running
/// `f` on the `i`-th slice of every argument. The derivation is
/// deterministic: structurally identical inputs produce structurally
/// identical (fingerprint-equal) outputs.
pub fn vmap(fun: &Fun) -> Result<Fun, VmapError> {
    if fun.params.is_empty() {
        return Err(VmapError::NoParams {
            fun: fun.name.clone(),
        });
    }
    if fun.params.iter().any(|p| p.ty.is_acc()) || fun.ret.iter().any(|t| t.is_acc()) {
        return Err(VmapError::Acc {
            fun: fun.name.clone(),
        });
    }
    let mut b = Builder::for_fun(fun);
    let lifted: Vec<Type> = fun.params.iter().map(|p| p.ty.lift()).collect();
    let out_tys: Vec<Type> = fun.ret.iter().map(|t| t.lift()).collect();
    Ok(
        b.build_fun(&format!("{}_vmap", fun.name), &lifted, |b, ps| {
            let outs = b.map(&out_tys, ps, |b, es| {
                // Inline the original body with its parameters redirected to
                // the map's element variables, all bindings freshened.
                let mut r = Renamer::new();
                for (p, e) in fun.params.iter().zip(es) {
                    r.insert(p.var, *e);
                }
                let body = r.body(b, &fun.body);
                for s in body.stms {
                    b.push_stm(s);
                }
                body.result
            });
            outs.into_iter().map(Atom::Var).collect()
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Atom;
    use crate::typecheck::check_fun;
    use crate::types::Type;

    #[test]
    fn unfused_redomap_typechecks_as_map_reduce() {
        // sum (map (\x -> x*x) xs) written as a redomap.
        let mut b = Builder::new();
        let fun = b.build_fun("sumsq", &[Type::arr_f64(1)], |b, ps| {
            let r = b.redomap(
                &[Type::F64],
                &[Atom::f64(0.0)],
                &[ps[0]],
                |b, es| vec![b.fmul(es[0].into(), es[0].into())],
                |b, rs| vec![b.fadd(rs[0].into(), rs[1].into())],
            );
            vec![r[0].into()]
        });
        check_fun(&fun).unwrap();
        let lowered = unfuse(&fun);
        check_fun(&lowered).unwrap();
        let kinds: Vec<&str> = lowered.body.stms.iter().map(|s| s.exp.kind()).collect();
        assert_eq!(kinds, vec!["map", "reduce"]);
    }

    #[test]
    fn vmap_lifts_every_param_and_result_one_rank() {
        let mut b = Builder::new();
        let fun = b.build_fun(
            "axpy",
            &[Type::F64, Type::arr_f64(1), Type::I64],
            |b, ps| {
                let scaled = b.map1(Type::arr_f64(1), &[ps[1]], |b, es| {
                    vec![b.fmul(ps[0].into(), es[0].into())]
                });
                vec![b.sum(scaled).into(), ps[2].into()]
            },
        );
        let v = vmap(&fun).unwrap();
        check_fun(&v).unwrap();
        assert_eq!(v.name, "axpy_vmap");
        let ptys: Vec<Type> = v.params.iter().map(|p| p.ty).collect();
        assert_eq!(
            ptys,
            vec![Type::arr_f64(1), Type::arr_f64(2), Type::arr_i64(1)]
        );
        assert_eq!(v.ret, vec![Type::arr_f64(1), Type::arr_i64(1)]);
        // One outer map, driven by the lifted parameters.
        assert_eq!(v.body.stms.len(), 1);
        assert!(matches!(v.body.stms[0].exp, Exp::Map { .. }));
        // Deterministic: two derivations are structurally identical.
        assert_eq!(format!("{}", vmap(&fun).unwrap()), format!("{v}"));
    }

    #[test]
    fn vmap_rejects_nullary_and_accumulator_functions() {
        let mut b = Builder::new();
        let nullary = b.build_fun("k", &[], |_, _| vec![Atom::f64(1.0)]);
        assert!(matches!(vmap(&nullary), Err(VmapError::NoParams { .. })));
        let mut b = Builder::new();
        let acc = b.build_fun("acc", &[Type::acc_f64(1)], |_, ps| vec![ps[0].into()]);
        assert!(matches!(vmap(&acc), Err(VmapError::Acc { .. })));
    }
}
