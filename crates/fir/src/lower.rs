//! Lowering optimizer-introduced constructs back to the core IR.
//!
//! The only such construct today is [`Exp::Redomap`], produced by `fir-opt`
//! producer–consumer fusion. The AD transformations (`futhark-ad`) have
//! per-construct rules for `map` and `reduce` but not for their fusion, so
//! they [`unfuse`] a function first; the derived function is then re-fused
//! when it passes through the optimization pipeline again.

use std::borrow::Cow;

use crate::builder::Builder;
use crate::ir::{Body, Exp, Fun, Lambda, Param, Stm, VarId};

/// Replace every `redomap` in `fun` by the equivalent `map` + `reduce`
/// pair (materializing the intermediate arrays). The common no-`redomap`
/// case (every function AD derives from pre-pipeline source IR) borrows
/// the input instead of copying it.
pub fn unfuse(fun: &Fun) -> Cow<'_, Fun> {
    if !body_contains_redomap(&fun.body) {
        return Cow::Borrowed(fun);
    }
    let mut b = Builder::for_fun(fun);
    Cow::Owned(Fun {
        name: fun.name.clone(),
        params: fun.params.clone(),
        body: unfuse_body(&mut b, &fun.body),
        ret: fun.ret.clone(),
    })
}

fn body_contains_redomap(body: &Body) -> bool {
    body.stms.iter().any(|s| match &s.exp {
        Exp::Redomap { .. } => true,
        Exp::If {
            then_br, else_br, ..
        } => body_contains_redomap(then_br) || body_contains_redomap(else_br),
        Exp::Loop { body: b, .. } => body_contains_redomap(b),
        Exp::Map { lam, .. }
        | Exp::Reduce { lam, .. }
        | Exp::Scan { lam, .. }
        | Exp::WithAcc { lam, .. } => body_contains_redomap(&lam.body),
        _ => false,
    })
}

fn unfuse_body(b: &mut Builder, body: &Body) -> Body {
    let mut stms = Vec::with_capacity(body.stms.len());
    for stm in &body.stms {
        match &stm.exp {
            Exp::Redomap {
                red_lam,
                map_lam,
                neutral,
                args,
            } => {
                let red_lam = unfuse_lambda(b, red_lam);
                let map_lam = unfuse_lambda(b, map_lam);
                let tmp_pat: Vec<Param> = map_lam
                    .ret
                    .iter()
                    .map(|t| {
                        let ty = t.lift();
                        Param::new(b.fresh(ty), ty)
                    })
                    .collect();
                let tmp_vars: Vec<VarId> = tmp_pat.iter().map(|p| p.var).collect();
                stms.push(Stm::new(
                    tmp_pat,
                    Exp::Map {
                        lam: map_lam,
                        args: args.clone(),
                    },
                ));
                stms.push(Stm::new(
                    stm.pat.clone(),
                    Exp::Reduce {
                        lam: red_lam,
                        neutral: neutral.clone(),
                        args: tmp_vars,
                    },
                ));
            }
            other => stms.push(Stm::new(stm.pat.clone(), unfuse_exp(b, other))),
        }
    }
    Body::new(stms, body.result.clone())
}

fn unfuse_lambda(b: &mut Builder, lam: &Lambda) -> Lambda {
    Lambda {
        params: lam.params.clone(),
        body: unfuse_body(b, &lam.body),
        ret: lam.ret.clone(),
    }
}

fn unfuse_exp(b: &mut Builder, e: &Exp) -> Exp {
    match e {
        Exp::If {
            cond,
            then_br,
            else_br,
        } => Exp::If {
            cond: *cond,
            then_br: unfuse_body(b, then_br),
            else_br: unfuse_body(b, else_br),
        },
        Exp::Loop {
            params,
            index,
            count,
            body,
        } => Exp::Loop {
            params: params.clone(),
            index: *index,
            count: *count,
            body: unfuse_body(b, body),
        },
        Exp::Map { lam, args } => Exp::Map {
            lam: unfuse_lambda(b, lam),
            args: args.clone(),
        },
        Exp::Reduce { lam, neutral, args } => Exp::Reduce {
            lam: unfuse_lambda(b, lam),
            neutral: neutral.clone(),
            args: args.clone(),
        },
        Exp::Scan { lam, neutral, args } => Exp::Scan {
            lam: unfuse_lambda(b, lam),
            neutral: neutral.clone(),
            args: args.clone(),
        },
        Exp::WithAcc { arrs, lam } => Exp::WithAcc {
            arrs: arrs.clone(),
            lam: unfuse_lambda(b, lam),
        },
        Exp::Redomap { .. } => unreachable!("handled at the statement level"),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Atom;
    use crate::typecheck::check_fun;
    use crate::types::Type;

    #[test]
    fn unfused_redomap_typechecks_as_map_reduce() {
        // sum (map (\x -> x*x) xs) written as a redomap.
        let mut b = Builder::new();
        let fun = b.build_fun("sumsq", &[Type::arr_f64(1)], |b, ps| {
            let r = b.redomap(
                &[Type::F64],
                &[Atom::f64(0.0)],
                &[ps[0]],
                |b, es| vec![b.fmul(es[0].into(), es[0].into())],
                |b, rs| vec![b.fadd(rs[0].into(), rs[1].into())],
            );
            vec![r[0].into()]
        });
        check_fun(&fun).unwrap();
        let lowered = unfuse(&fun);
        check_fun(&lowered).unwrap();
        let kinds: Vec<&str> = lowered.body.stms.iter().map(|s| s.exp.kind()).collect();
        assert_eq!(kinds, vec!["map", "reduce"]);
    }
}
