//! `fir` — a functional, A-normal-form intermediate representation for a
//! data-parallel array language with *nested parallelism*, modelled on the
//! core IR of the Futhark compiler as described in
//! "AD for an Array Language with Nested Parallelism" (SC 2022).
//!
//! The IR supports:
//!
//! * scalars (`f64`, `i64`, `bool`) and regular multi-dimensional arrays,
//! * scalar primitives (arithmetic, transcendental, comparisons),
//! * second-order array combinators (SOACs): [`Exp::Map`], [`Exp::Reduce`],
//!   [`Exp::Scan`], [`Exp::Hist`] (reduce-by-index / generalized histogram)
//!   and [`Exp::Scatter`],
//! * sequential `loop`s with the semantics of tail-recursive functions,
//! * `if`/`then`/`else`, array indexing, in-place updates, and
//! * *accumulators* ([`Exp::WithAcc`] / [`Exp::UpdAcc`]) — the write-only
//!   array views introduced by reverse-mode AD for free variables of `map`.
//!
//! Programs are built with [`builder::Builder`], checked with
//! [`typecheck::check_fun`], pretty-printed via `Display`, and executed by
//! the `interp` crate. The `futhark-ad` crate implements forward- and
//! reverse-mode AD as IR-to-IR transformations over this representation.
//!
//! # Example
//!
//! ```
//! use fir::builder::Builder;
//! use fir::types::Type;
//!
//! // f(xs) = sum (map (\x -> x*x) xs)
//! let mut b = Builder::new();
//! let fun = b.build_fun("sum_squares", &[Type::arr_f64(1)], |b, params| {
//!     let xs = params[0];
//!     let squared = b.map1(Type::arr_f64(1), &[xs], |b, elems| {
//!         let x = elems[0];
//!         vec![b.fmul(x.into(), x.into())]
//!     });
//!     let s = b.sum(squared);
//!     vec![s.into()]
//! });
//! assert_eq!(fun.params.len(), 1);
//! ```

pub mod builder;
pub mod free_vars;
pub mod hash;
pub mod ir;
pub mod lower;
pub mod pretty;
pub mod rename;
pub mod typecheck;
pub mod types;

pub use ir::{Atom, BinOp, Body, Const, Exp, Fun, Lambda, Param, ReduceOp, Stm, UnOp, VarId};
pub use types::{ScalarType, Type};
