//! A structural type checker for the IR.
//!
//! The checker validates that every variable is bound before use, that
//! operand ranks/element types are consistent, that SOAC lambdas have the
//! right arity, and that accumulators are only updated (never read). It is
//! used as a sanity check on the output of the AD and optimization passes
//! in tests and debug builds.

use std::collections::HashMap;
use std::fmt;

use crate::ir::{Atom, BinOp, Body, Exp, Fun, Lambda, Param, Stm, UnOp, VarId};
use crate::types::{ScalarType, Type};

/// A type error: a human-readable description plus the name of the
/// function it was found in (attached by [`check_fun`]), so errors that
/// cross API layers (e.g. `fir-api`'s `Engine::compile`) still identify
/// their source program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// What went wrong.
    pub message: String,
    /// The function being checked, when known.
    pub in_fun: Option<String>,
}

impl TypeError {
    /// A type error with no function context.
    pub fn new(message: impl Into<String>) -> TypeError {
        TypeError {
            message: message.into(),
            in_fun: None,
        }
    }

    /// Attach (or replace) the function name the error was found in.
    pub fn in_fun(mut self, name: &str) -> TypeError {
        self.in_fun = Some(name.to_string());
        self
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.in_fun {
            Some(name) => write!(f, "type error in `{name}`: {}", self.message),
            None => write!(f, "type error: {}", self.message),
        }
    }
}

impl std::error::Error for TypeError {}

macro_rules! bail {
    ($($arg:tt)*) => {
        return Err(TypeError::new(format!($($arg)*)))
    };
}

/// The typing environment: a map from variables to types.
#[derive(Debug, Default, Clone)]
pub struct Env {
    vars: HashMap<VarId, Type>,
}

impl Env {
    fn bind(&mut self, p: &Param) {
        self.vars.insert(p.var, p.ty);
    }

    fn lookup(&self, v: VarId) -> Result<Type, TypeError> {
        self.vars
            .get(&v)
            .copied()
            .ok_or_else(|| TypeError::new(format!("unbound variable {v}")))
    }

    fn atom(&self, a: &Atom) -> Result<Type, TypeError> {
        match a {
            Atom::Var(v) => self.lookup(*v),
            Atom::Const(c) => Ok(c.ty()),
        }
    }
}

fn expect_scalar(t: Type, what: &str) -> Result<ScalarType, TypeError> {
    match t {
        Type::Scalar(s) => Ok(s),
        _ => Err(TypeError::new(format!(
            "{what}: expected a scalar, got {t}"
        ))),
    }
}

fn expect_array(t: Type, what: &str) -> Result<(ScalarType, usize), TypeError> {
    match t {
        Type::Array { elem, rank } => Ok((elem, rank)),
        _ => Err(TypeError::new(format!(
            "{what}: expected an array, got {t}"
        ))),
    }
}

fn check_index(env: &Env, idx: &[Atom], what: &str) -> Result<(), TypeError> {
    for a in idx {
        let t = env.atom(a)?;
        if t != Type::I64 {
            bail!("{what}: index must be i64, got {t}");
        }
    }
    Ok(())
}

/// Check a lambda against the given argument element types; returns its
/// declared result types.
fn check_lambda(
    env: &Env,
    lam: &Lambda,
    expected_params: &[Type],
    what: &str,
) -> Result<Vec<Type>, TypeError> {
    if lam.params.len() != expected_params.len() {
        bail!(
            "{what}: lambda takes {} parameters, expected {}",
            lam.params.len(),
            expected_params.len()
        );
    }
    for (p, want) in lam.params.iter().zip(expected_params) {
        if p.ty != *want {
            bail!(
                "{what}: lambda parameter {} has type {}, expected {want}",
                p.var,
                p.ty
            );
        }
    }
    let mut inner = env.clone();
    for p in &lam.params {
        inner.bind(p);
    }
    let got = check_body(&inner, &lam.body)?;
    if got != lam.ret {
        bail!(
            "{what}: lambda body returns {:?}, declared {:?}",
            got,
            lam.ret
        );
    }
    Ok(lam.ret.clone())
}

/// Infer the types of the values produced by an expression.
fn check_exp(env: &Env, e: &Exp) -> Result<Vec<Type>, TypeError> {
    match e {
        Exp::Atom(a) => Ok(vec![env.atom(a)?]),
        Exp::UnOp(op, a) => {
            let t = env.atom(a)?;
            let s = expect_scalar(t, "unop operand")?;
            let out = match op {
                UnOp::Not => {
                    if s != ScalarType::Bool {
                        bail!("not: expected bool, got {t}");
                    }
                    ScalarType::Bool
                }
                UnOp::ToF64 => ScalarType::F64,
                UnOp::ToI64 => ScalarType::I64,
                UnOp::Neg | UnOp::Abs => s,
                _ => {
                    if s != ScalarType::F64 {
                        bail!("float unop on {t}");
                    }
                    ScalarType::F64
                }
            };
            Ok(vec![Type::Scalar(out)])
        }
        Exp::BinOp(op, a, b) => {
            let ta = env.atom(a)?;
            let tb = env.atom(b)?;
            let sa = expect_scalar(ta, "binop lhs")?;
            let sb = expect_scalar(tb, "binop rhs")?;
            if sa != sb {
                bail!("binop operand types differ: {ta} vs {tb}");
            }
            if matches!(op, BinOp::And | BinOp::Or) && sa != ScalarType::Bool {
                bail!("logical operator on {ta}");
            }
            let out = if op.is_predicate() {
                ScalarType::Bool
            } else {
                sa
            };
            Ok(vec![Type::Scalar(out)])
        }
        Exp::Select { cond, t, f } => {
            let tc = env.atom(cond)?;
            if tc != Type::BOOL {
                bail!("select condition must be bool, got {tc}");
            }
            let tt = env.atom(t)?;
            let tf = env.atom(f)?;
            if tt != tf {
                bail!("select branches differ: {tt} vs {tf}");
            }
            Ok(vec![tt])
        }
        Exp::Index { arr, idx } => {
            let t = env.lookup(*arr)?;
            let (elem, rank) = expect_array(t, "index target")?;
            if idx.is_empty() || idx.len() > rank {
                bail!("indexing rank-{rank} array with {} indices", idx.len());
            }
            check_index(env, idx, "index")?;
            Ok(vec![Type::Array { elem, rank }.index(idx.len())])
        }
        Exp::Update { arr, idx, val } => {
            let t = env.lookup(*arr)?;
            let (elem, rank) = expect_array(t, "update target")?;
            if idx.is_empty() || idx.len() > rank {
                bail!("updating rank-{rank} array with {} indices", idx.len());
            }
            check_index(env, idx, "update")?;
            let tv = env.atom(val)?;
            let expect = Type::Array { elem, rank }.index(idx.len());
            if tv != expect {
                bail!("update value has type {tv}, expected {expect}");
            }
            Ok(vec![t])
        }
        Exp::Len(v) => {
            expect_array(env.lookup(*v)?, "length")?;
            Ok(vec![Type::I64])
        }
        Exp::Iota(n) => {
            if env.atom(n)? != Type::I64 {
                bail!("iota count must be i64");
            }
            Ok(vec![Type::arr_i64(1)])
        }
        Exp::Replicate { n, val } => {
            if env.atom(n)? != Type::I64 {
                bail!("replicate count must be i64");
            }
            let tv = env.atom(val)?;
            if tv.is_acc() {
                bail!("cannot replicate an accumulator");
            }
            Ok(vec![tv.lift()])
        }
        Exp::Reverse(v) | Exp::Copy(v) => {
            let t = env.lookup(*v)?;
            expect_array(t, "reverse/copy")?;
            Ok(vec![t])
        }
        Exp::If {
            cond,
            then_br,
            else_br,
        } => {
            if env.atom(cond)? != Type::BOOL {
                bail!("if condition must be bool");
            }
            let tt = check_body(env, then_br)?;
            let tf = check_body(env, else_br)?;
            if tt != tf {
                bail!("if branches return {:?} vs {:?}", tt, tf);
            }
            Ok(tt)
        }
        Exp::Loop {
            params,
            index,
            count,
            body,
        } => {
            if env.atom(count)? != Type::I64 {
                bail!("loop count must be i64");
            }
            let mut inner = env.clone();
            for (p, init) in params {
                let ti = env.atom(init)?;
                if ti != p.ty {
                    bail!(
                        "loop parameter {} has type {}, initializer has {ti}",
                        p.var,
                        p.ty
                    );
                }
                inner.bind(p);
            }
            inner.bind(&Param::new(*index, Type::I64));
            let got = check_body(&inner, body)?;
            let want: Vec<Type> = params.iter().map(|(p, _)| p.ty).collect();
            if got != want {
                bail!("loop body returns {:?}, parameters are {:?}", got, want);
            }
            Ok(want)
        }
        Exp::Map { lam, args } => {
            if args.is_empty() {
                bail!("map with no arguments");
            }
            let mut elem_tys = Vec::new();
            for a in args {
                let t = env.lookup(*a)?;
                if t.is_acc() {
                    // Arrays of accumulators are implicitly converted
                    // (paper §5.4); the element is the accumulator itself.
                    elem_tys.push(t);
                } else {
                    expect_array(t, "map argument")?;
                    elem_tys.push(t.peel());
                }
            }
            let ret = check_lambda(env, lam, &elem_tys, "map")?;
            Ok(ret
                .iter()
                .map(|t| if t.is_acc() { *t } else { t.lift() })
                .collect())
        }
        Exp::Reduce { lam, neutral, args } | Exp::Scan { lam, neutral, args } => {
            let is_scan = matches!(e, Exp::Scan { .. });
            if args.is_empty() {
                bail!("reduce/scan with no arguments");
            }
            let mut elem_tys = Vec::new();
            for a in args {
                let t = env.lookup(*a)?;
                expect_array(t, "reduce/scan argument")?;
                elem_tys.push(t.peel());
            }
            if neutral.len() != elem_tys.len() {
                bail!(
                    "reduce/scan has {} neutral elements for {} arrays",
                    neutral.len(),
                    elem_tys.len()
                );
            }
            for (ne, t) in neutral.iter().zip(&elem_tys) {
                let tn = env.atom(ne)?;
                if tn != *t {
                    bail!("neutral element has type {tn}, expected {t}");
                }
            }
            let mut lam_params = elem_tys.clone();
            lam_params.extend(elem_tys.iter().copied());
            let ret = check_lambda(env, lam, &lam_params, "reduce/scan")?;
            if ret != elem_tys {
                bail!(
                    "reduce/scan operator returns {:?}, expected {:?}",
                    ret,
                    elem_tys
                );
            }
            if is_scan {
                Ok(ret.iter().map(|t| t.lift()).collect())
            } else {
                Ok(ret)
            }
        }
        Exp::Redomap {
            red_lam,
            map_lam,
            neutral,
            args,
        } => {
            if args.is_empty() {
                bail!("redomap with no arguments");
            }
            let mut elem_tys = Vec::new();
            for a in args {
                let t = env.lookup(*a)?;
                expect_array(t, "redomap argument")?;
                elem_tys.push(t.peel());
            }
            let out_tys = check_lambda(env, map_lam, &elem_tys, "redomap map")?;
            if out_tys.iter().any(|t| t.is_acc()) {
                bail!("redomap map part must not produce accumulators");
            }
            if neutral.len() != out_tys.len() {
                bail!(
                    "redomap has {} neutral elements for {} mapped results",
                    neutral.len(),
                    out_tys.len()
                );
            }
            for (ne, t) in neutral.iter().zip(&out_tys) {
                let tn = env.atom(ne)?;
                if tn != *t {
                    bail!("redomap neutral element has type {tn}, expected {t}");
                }
            }
            let mut red_params = out_tys.clone();
            red_params.extend(out_tys.iter().copied());
            let ret = check_lambda(env, red_lam, &red_params, "redomap reduce")?;
            if ret != out_tys {
                bail!("redomap operator returns {:?}, expected {:?}", ret, out_tys);
            }
            Ok(ret)
        }
        Exp::Hist {
            num_bins,
            inds,
            vals,
            ..
        } => {
            if env.atom(num_bins)? != Type::I64 {
                bail!("hist bin count must be i64");
            }
            let ti = env.lookup(*inds)?;
            if ti != Type::arr_i64(1) {
                bail!("hist indices must be []i64, got {ti}");
            }
            let tv = env.lookup(*vals)?;
            let (elem, _) = expect_array(tv, "hist values")?;
            if elem != ScalarType::F64 {
                bail!("hist values must be f64 arrays");
            }
            Ok(vec![tv])
        }
        Exp::Scatter { dest, inds, vals } => {
            let td = env.lookup(*dest)?;
            expect_array(td, "scatter destination")?;
            let ti = env.lookup(*inds)?;
            if ti != Type::arr_i64(1) {
                bail!("scatter indices must be []i64, got {ti}");
            }
            let tv = env.lookup(*vals)?;
            expect_array(tv, "scatter values")?;
            if tv != td {
                bail!("scatter values ({tv}) must match destination ({td})");
            }
            Ok(vec![td])
        }
        Exp::WithAcc { arrs, lam } => {
            let mut arr_tys = Vec::new();
            for a in arrs {
                let t = env.lookup(*a)?;
                expect_array(t, "withacc array")?;
                arr_tys.push(t);
            }
            let acc_tys: Vec<Type> = arr_tys.iter().map(|t| t.to_acc()).collect();
            let ret = check_lambda(env, lam, &acc_tys, "withacc")?;
            if ret.len() < arrs.len() {
                bail!(
                    "withacc lambda must return at least {} accumulators",
                    arrs.len()
                );
            }
            for (r, want) in ret.iter().take(arrs.len()).zip(&acc_tys) {
                if r != want {
                    bail!("withacc lambda result {r} does not match accumulator {want}");
                }
            }
            let mut out = arr_tys;
            out.extend(ret.into_iter().skip(out.len()));
            Ok(out)
        }
        Exp::UpdAcc { acc, idx, val } => {
            let t = env.lookup(*acc)?;
            let (elem, rank) = match t {
                Type::Acc { elem, rank } => (elem, rank),
                _ => bail!("upd_acc target must be an accumulator, got {t}"),
            };
            if idx.len() > rank {
                bail!(
                    "upd_acc on rank-{rank} accumulator with {} indices",
                    idx.len()
                );
            }
            check_index(env, idx, "upd_acc")?;
            let tv = env.atom(val)?;
            let want = Type::Array { elem, rank }.index(idx.len());
            if tv != want {
                bail!("upd_acc value has type {tv}, expected {want}");
            }
            Ok(vec![t])
        }
    }
}

/// Check a body, returning the types of its results.
fn check_body(env: &Env, b: &Body) -> Result<Vec<Type>, TypeError> {
    let mut env = env.clone();
    for Stm { pat, exp } in &b.stms {
        let tys = check_exp(&env, exp)?;
        if tys.len() != pat.len() {
            bail!(
                "pattern binds {} variables but `{}` produces {} values",
                pat.len(),
                exp.kind(),
                tys.len()
            );
        }
        for (p, t) in pat.iter().zip(&tys) {
            if p.ty != *t {
                bail!("variable {} declared {} but bound to {}", p.var, p.ty, t);
            }
            env.bind(p);
        }
    }
    b.result.iter().map(|a| env.atom(a)).collect()
}

/// Type-check a whole function. Errors carry the function's name.
pub fn check_fun(f: &Fun) -> Result<(), TypeError> {
    check_fun_inner(f).map_err(|e| e.in_fun(&f.name))
}

fn check_fun_inner(f: &Fun) -> Result<(), TypeError> {
    let mut env = Env::default();
    for p in &f.params {
        env.bind(p);
    }
    let got = check_body(&env, &f.body)?;
    if got != f.ret {
        bail!(
            "function {} returns {:?}, declared {:?}",
            f.name,
            got,
            f.ret
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::ir::Atom;

    #[test]
    fn accepts_wellformed_function() {
        let mut b = Builder::new();
        let f = b.build_fun("dot", &[Type::arr_f64(1), Type::arr_f64(1)], |b, ps| {
            let prods = b.map1(Type::arr_f64(1), &[ps[0], ps[1]], |b, es| {
                vec![b.fmul(es[0].into(), es[1].into())]
            });
            vec![Atom::Var(b.sum(prods))]
        });
        check_fun(&f).unwrap();
    }

    #[test]
    fn rejects_unbound_variable() {
        use crate::ir::{Body, Exp, Param, Stm};
        let f = Fun {
            name: "bad".into(),
            params: vec![],
            body: Body::new(
                vec![Stm::new(
                    vec![Param::new(VarId(1), Type::F64)],
                    Exp::UnOp(UnOp::Sin, Atom::Var(VarId(99))),
                )],
                vec![Atom::Var(VarId(1))],
            ),
            ret: vec![Type::F64],
        };
        let err = check_fun(&f).unwrap_err();
        assert_eq!(err.in_fun.as_deref(), Some("bad"));
        assert!(err.to_string().contains("in `bad`"), "{err}");
    }

    #[test]
    fn rejects_mismatched_binop() {
        use crate::ir::{Body, Exp, Param, Stm};
        let f = Fun {
            name: "bad".into(),
            params: vec![Param::new(VarId(0), Type::F64)],
            body: Body::new(
                vec![Stm::new(
                    vec![Param::new(VarId(1), Type::F64)],
                    Exp::BinOp(BinOp::Add, Atom::Var(VarId(0)), Atom::i64(1)),
                )],
                vec![Atom::Var(VarId(1))],
            ),
            ret: vec![Type::F64],
        };
        assert!(check_fun(&f).is_err());
    }

    #[test]
    fn checks_control_flow_and_soacs() {
        let mut b = Builder::new();
        let f = b.build_fun("mixed", &[Type::arr_f64(2), Type::I64], |b, ps| {
            let xss = ps[0];
            let n = Atom::Var(ps[1]);
            let sums = b.map1(Type::arr_f64(1), &[xss], |b, rows| {
                vec![Atom::Var(b.sum(rows[0]))]
            });
            let total = b.sum(sums);
            let doubled = b.loop_(&[(Type::F64, total.into())], n, |b, _i, acc| {
                vec![b.fadd(acc[0].into(), acc[0].into())]
            });
            let cond = b.gt(doubled[0].into(), Atom::f64(1.0));
            let r = b.if_(
                cond,
                &[Type::F64],
                |_b| vec![doubled[0].into()],
                |_b| vec![Atom::f64(0.0)],
            );
            vec![r[0].into()]
        });
        check_fun(&f).unwrap();
    }

    #[test]
    fn checks_withacc_and_updacc() {
        let mut b = Builder::new();
        let f = b.build_fun("accum", &[Type::arr_f64(1), Type::arr_i64(1)], |b, ps| {
            let dst = ps[0];
            let inds = ps[1];
            let out = b.with_acc(&[dst], |b, accs| {
                let acc = accs[0];
                let upd = b.map1(b.ty_of(acc), &[inds, acc], |b, es| {
                    let i = es[0];
                    let a = es[1];
                    let a2 = b.upd_acc(a, &[i.into()], Atom::f64(1.0));
                    vec![a2.into()]
                });
                vec![upd.into()]
            });
            vec![out[0].into()]
        });
        check_fun(&f).unwrap();
    }

    #[test]
    fn rejects_scatter_type_mismatch() {
        let mut b = Builder::new();
        let f = b.build_fun(
            "bad_scatter",
            &[Type::arr_f64(1), Type::arr_i64(1), Type::arr_i64(1)],
            |b, ps| {
                let out = b.bind1(
                    Type::arr_f64(1),
                    Exp::Scatter {
                        dest: ps[0],
                        inds: ps[1],
                        vals: ps[2],
                    },
                );
                vec![out.into()]
            },
        );
        assert!(check_fun(&f).is_err());
    }
}
