//! Structural, binder-normalized hashing of IR fragments.
//!
//! Two expressions receive the same [`ExpKey`] exactly when they are
//! alpha-equivalent (bound variables are numbered by traversal order, so
//! lambdas that differ only in the names the `Builder`/`Renamer` happened to
//! allocate hash alike) and reference the same *free* variables. Constants
//! hash by bit pattern, so `-0.0` and `0.0` stay distinct and a `NaN`
//! reliably equals itself — both matter for the bitwise
//! semantics-preservation guarantee of the optimizer.
//!
//! The key is a pair of independently salted 64-bit hashes. As with the
//! `firvm` program cache, 128 matching bits are treated as structural
//! identity by the common-subexpression-elimination pass; a collision is out
//! of reach in practice.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::ir::{Atom, Body, Const, Exp, Lambda, Stm, VarId};

/// A 128-bit structural identity of an expression: equal keys mean
/// alpha-equivalent expressions over the same free variables.
pub type ExpKey = (u64, u64);

/// The structural key of an expression (see module docs).
pub fn exp_key(e: &Exp) -> ExpKey {
    (
        hash_one(e, 0x517c_c1b7_2722_0a95),
        hash_one(e, 0x9e37_79b9_7f4a_7c15),
    )
}

fn hash_one(e: &Exp, salt: u64) -> u64 {
    let mut h = DefaultHasher::new();
    salt.hash(&mut h);
    let mut cx = Ctx::default();
    cx.exp(e, &mut h);
    h.finish()
}

/// Binder-numbering context. Binders get sequential indices in traversal
/// order; shadowed entries are restored on scope exit so sibling scopes
/// never see each other's binders.
#[derive(Default)]
struct Ctx {
    bound: HashMap<VarId, u32>,
    next: u32,
}

impl Ctx {
    fn bind(&mut self, v: VarId) -> Option<u32> {
        self.next += 1;
        self.bound.insert(v, self.next)
    }

    fn unbind(&mut self, v: VarId, old: Option<u32>) {
        match old {
            Some(i) => {
                self.bound.insert(v, i);
            }
            None => {
                self.bound.remove(&v);
            }
        }
    }

    fn var(&self, v: VarId, h: &mut DefaultHasher) {
        match self.bound.get(&v) {
            Some(i) => {
                1u8.hash(h);
                i.hash(h);
            }
            None => {
                0u8.hash(h);
                v.0.hash(h);
            }
        }
    }

    fn atom(&self, a: &Atom, h: &mut DefaultHasher) {
        match a {
            Atom::Var(v) => self.var(*v, h),
            Atom::Const(Const::F64(x)) => {
                2u8.hash(h);
                x.to_bits().hash(h);
            }
            Atom::Const(Const::I64(x)) => {
                3u8.hash(h);
                x.hash(h);
            }
            Atom::Const(Const::Bool(x)) => {
                4u8.hash(h);
                x.hash(h);
            }
        }
    }

    fn atoms(&self, atoms: &[Atom], h: &mut DefaultHasher) {
        atoms.len().hash(h);
        for a in atoms {
            self.atom(a, h);
        }
    }

    fn vars(&self, vars: &[VarId], h: &mut DefaultHasher) {
        vars.len().hash(h);
        for v in vars {
            self.var(*v, h);
        }
    }

    fn body(&mut self, b: &Body, h: &mut DefaultHasher) {
        let mut saved: Vec<(VarId, Option<u32>)> = Vec::new();
        b.stms.len().hash(h);
        for Stm { pat, exp } in &b.stms {
            // The pattern is not in scope for its own right-hand side.
            self.exp(exp, h);
            pat.len().hash(h);
            for p in pat {
                p.ty.hash(h);
                saved.push((p.var, self.bind(p.var)));
            }
        }
        b.result.len().hash(h);
        for a in &b.result {
            self.atom(a, h);
        }
        for (v, old) in saved.into_iter().rev() {
            self.unbind(v, old);
        }
    }

    fn lambda(&mut self, lam: &Lambda, h: &mut DefaultHasher) {
        let saved: Vec<(VarId, Option<u32>)> = lam
            .params
            .iter()
            .map(|p| {
                p.ty.hash(h);
                (p.var, self.bind(p.var))
            })
            .collect();
        self.body(&lam.body, h);
        lam.ret.len().hash(h);
        for t in &lam.ret {
            t.hash(h);
        }
        for (v, old) in saved.into_iter().rev() {
            self.unbind(v, old);
        }
    }

    fn exp(&mut self, e: &Exp, h: &mut DefaultHasher) {
        e.kind().hash(h);
        match e {
            Exp::Atom(a) | Exp::Iota(a) => self.atom(a, h),
            Exp::UnOp(op, a) => {
                op.hash(h);
                self.atom(a, h);
            }
            Exp::BinOp(op, a, b) => {
                op.hash(h);
                self.atom(a, h);
                self.atom(b, h);
            }
            Exp::Select { cond, t, f } => {
                self.atom(cond, h);
                self.atom(t, h);
                self.atom(f, h);
            }
            Exp::Index { arr, idx } => {
                self.var(*arr, h);
                self.atoms(idx, h);
            }
            Exp::Update { arr, idx, val } => {
                self.var(*arr, h);
                self.atoms(idx, h);
                self.atom(val, h);
            }
            Exp::Len(v) | Exp::Reverse(v) | Exp::Copy(v) => self.var(*v, h),
            Exp::Replicate { n, val } => {
                self.atom(n, h);
                self.atom(val, h);
            }
            Exp::If {
                cond,
                then_br,
                else_br,
            } => {
                self.atom(cond, h);
                self.body(then_br, h);
                self.body(else_br, h);
            }
            Exp::Loop {
                params,
                index,
                count,
                body,
            } => {
                self.atom(count, h);
                params.len().hash(h);
                for (_, init) in params {
                    self.atom(init, h);
                }
                let mut saved: Vec<(VarId, Option<u32>)> = params
                    .iter()
                    .map(|(p, _)| {
                        p.ty.hash(h);
                        (p.var, self.bind(p.var))
                    })
                    .collect();
                saved.push((*index, self.bind(*index)));
                self.body(body, h);
                for (v, old) in saved.into_iter().rev() {
                    self.unbind(v, old);
                }
            }
            Exp::Map { lam, args } => {
                self.lambda(lam, h);
                self.vars(args, h);
            }
            Exp::Reduce { lam, neutral, args } | Exp::Scan { lam, neutral, args } => {
                self.lambda(lam, h);
                self.atoms(neutral, h);
                self.vars(args, h);
            }
            Exp::Redomap {
                red_lam,
                map_lam,
                neutral,
                args,
            } => {
                self.lambda(red_lam, h);
                self.lambda(map_lam, h);
                self.atoms(neutral, h);
                self.vars(args, h);
            }
            Exp::Hist {
                op,
                num_bins,
                inds,
                vals,
            } => {
                op.hash(h);
                self.atom(num_bins, h);
                self.var(*inds, h);
                self.var(*vals, h);
            }
            Exp::Scatter { dest, inds, vals } => {
                self.var(*dest, h);
                self.var(*inds, h);
                self.var(*vals, h);
            }
            Exp::WithAcc { arrs, lam } => {
                self.vars(arrs, h);
                self.lambda(lam, h);
            }
            Exp::UpdAcc { acc, idx, val } => {
                self.var(*acc, h);
                self.atoms(idx, h);
                self.atom(val, h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::rename::refresh_lambda;
    use crate::types::Type;

    fn square_map(b: &mut Builder, xs: VarId) -> Exp {
        let lam = b.lambda(&[Type::F64], |b, ps| {
            vec![b.fmul(ps[0].into(), ps[0].into())]
        });
        Exp::Map {
            lam,
            args: vec![xs],
        }
    }

    #[test]
    fn alpha_variants_share_a_key() {
        let mut b = Builder::new();
        b.begin_scope();
        let xs = b.fresh(Type::arr_f64(1));
        let e1 = square_map(&mut b, xs);
        let e2 = square_map(&mut b, xs); // distinct binder names
        let _ = b.end_scope();
        assert_ne!(e1, e2, "builder must have allocated fresh names");
        assert_eq!(exp_key(&e1), exp_key(&e2));
        // Renaming bound variables does not change the key either.
        if let Exp::Map { lam, args } = &e1 {
            let fresh = Exp::Map {
                lam: refresh_lambda(&mut b, lam),
                args: args.clone(),
            };
            assert_eq!(exp_key(&e1), exp_key(&fresh));
        }
    }

    #[test]
    fn free_variables_and_constants_distinguish() {
        let mut b = Builder::new();
        b.begin_scope();
        let xs = b.fresh(Type::arr_f64(1));
        let ys = b.fresh(Type::arr_f64(1));
        let e_xs = square_map(&mut b, xs);
        let e_ys = square_map(&mut b, ys);
        let _ = b.end_scope();
        assert_ne!(exp_key(&e_xs), exp_key(&e_ys));

        let x = Atom::Var(VarId(7));
        let add0 = Exp::BinOp(crate::ir::BinOp::Add, x, Atom::f64(0.0));
        let sub0 = Exp::BinOp(crate::ir::BinOp::Sub, x, Atom::f64(0.0));
        let addn0 = Exp::BinOp(crate::ir::BinOp::Add, x, Atom::f64(-0.0));
        assert_ne!(exp_key(&add0), exp_key(&sub0));
        assert_ne!(
            exp_key(&add0),
            exp_key(&addn0),
            "-0.0 must not merge with 0.0"
        );
        let nan = Exp::BinOp(crate::ir::BinOp::Add, x, Atom::f64(f64::NAN));
        assert_eq!(
            exp_key(&nan),
            exp_key(&nan.clone()),
            "NaN equals itself by bits"
        );
    }
}
