//! Types of the IR: scalars, regular arrays of a given rank, and
//! accumulators (write-only array views used by reverse-mode AD).

use std::fmt;

/// Element types of scalars and arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    /// 64-bit IEEE-754 float — the only differentiable scalar type.
    F64,
    /// 64-bit signed integer (indices, counts, bins).
    I64,
    /// Booleans (branch conditions, masks).
    Bool,
}

impl ScalarType {
    /// True for the differentiable scalar type (`f64`).
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::F64)
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarType::F64 => write!(f, "f64"),
            ScalarType::I64 => write!(f, "i64"),
            ScalarType::Bool => write!(f, "bool"),
        }
    }
}

/// The type of an IR value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// A scalar of the given element type.
    Scalar(ScalarType),
    /// A regular (rectangular) array of the given element type and rank ≥ 1.
    Array { elem: ScalarType, rank: usize },
    /// An accumulator: a write-only view of an array of the given element
    /// type and rank. Accumulators only appear in code produced by
    /// reverse-mode AD (or hand-written equivalents) and have no runtime
    /// representation beyond the underlying array.
    Acc { elem: ScalarType, rank: usize },
}

impl Type {
    /// Scalar `f64`.
    pub const F64: Type = Type::Scalar(ScalarType::F64);
    /// Scalar `i64`.
    pub const I64: Type = Type::Scalar(ScalarType::I64);
    /// Scalar `bool`.
    pub const BOOL: Type = Type::Scalar(ScalarType::Bool);

    /// An `f64` array of the given rank.
    pub fn arr_f64(rank: usize) -> Type {
        Type::Array {
            elem: ScalarType::F64,
            rank,
        }
    }

    /// An `i64` array of the given rank.
    pub fn arr_i64(rank: usize) -> Type {
        Type::Array {
            elem: ScalarType::I64,
            rank,
        }
    }

    /// A `bool` array of the given rank.
    pub fn arr_bool(rank: usize) -> Type {
        Type::Array {
            elem: ScalarType::Bool,
            rank,
        }
    }

    /// An accumulator over an `f64` array of the given rank.
    pub fn acc_f64(rank: usize) -> Type {
        Type::Acc {
            elem: ScalarType::F64,
            rank,
        }
    }

    /// The element type of this type (its own type if scalar).
    pub fn elem(&self) -> ScalarType {
        match *self {
            Type::Scalar(e) | Type::Array { elem: e, .. } | Type::Acc { elem: e, .. } => e,
        }
    }

    /// Rank: 0 for scalars, array rank otherwise.
    pub fn rank(&self) -> usize {
        match *self {
            Type::Scalar(_) => 0,
            Type::Array { rank, .. } | Type::Acc { rank, .. } => rank,
        }
    }

    /// Is this a scalar type?
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Scalar(_))
    }

    /// Is this an array type?
    pub fn is_array(&self) -> bool {
        matches!(self, Type::Array { .. })
    }

    /// Is this an accumulator type?
    pub fn is_acc(&self) -> bool {
        matches!(self, Type::Acc { .. })
    }

    /// Does the type carry `f64` data (and therefore has a nontrivial
    /// derivative)?
    pub fn is_differentiable(&self) -> bool {
        self.elem().is_float() && !self.is_acc()
    }

    /// The type of one element obtained by indexing along the outermost
    /// dimension. Panics on scalars.
    pub fn peel(&self) -> Type {
        match *self {
            Type::Array { elem, rank } => {
                if rank == 1 {
                    Type::Scalar(elem)
                } else {
                    Type::Array {
                        elem,
                        rank: rank - 1,
                    }
                }
            }
            Type::Acc { elem, rank } => {
                if rank == 1 {
                    Type::Scalar(elem)
                } else {
                    Type::Acc {
                        elem,
                        rank: rank - 1,
                    }
                }
            }
            Type::Scalar(_) => panic!("Type::peel on a scalar"),
        }
    }

    /// The type of an array of elements of this type. Panics on accumulators.
    pub fn lift(&self) -> Type {
        match *self {
            Type::Scalar(elem) => Type::Array { elem, rank: 1 },
            Type::Array { elem, rank } => Type::Array {
                elem,
                rank: rank + 1,
            },
            Type::Acc { .. } => panic!("Type::lift on an accumulator"),
        }
    }

    /// The type obtained after indexing with `n` indices.
    pub fn index(&self, n: usize) -> Type {
        let mut t = *self;
        for _ in 0..n {
            t = t.peel();
        }
        t
    }

    /// The corresponding accumulator type (same elem/rank). Panics on scalars.
    pub fn to_acc(&self) -> Type {
        match *self {
            Type::Array { elem, rank } => Type::Acc { elem, rank },
            Type::Acc { elem, rank } => Type::Acc { elem, rank },
            Type::Scalar(_) => panic!("Type::to_acc on a scalar"),
        }
    }

    /// The corresponding array type for an accumulator; identity otherwise.
    pub fn from_acc(&self) -> Type {
        match *self {
            Type::Acc { elem, rank } => Type::Array { elem, rank },
            t => t,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Type::Scalar(e) => write!(f, "{e}"),
            Type::Array { elem, rank } => {
                for _ in 0..rank {
                    write!(f, "[]")?;
                }
                write!(f, "{elem}")
            }
            Type::Acc { elem, rank } => {
                write!(f, "acc(")?;
                for _ in 0..rank {
                    write!(f, "[]")?;
                }
                write!(f, "{elem})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peel_and_lift_are_inverse() {
        let t = Type::arr_f64(3);
        assert_eq!(t.peel().lift(), t);
        assert_eq!(Type::F64.lift().peel(), Type::F64);
    }

    #[test]
    fn index_reduces_rank() {
        let t = Type::arr_f64(2);
        assert_eq!(t.index(1), Type::arr_f64(1));
        assert_eq!(t.index(2), Type::F64);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::arr_f64(2).to_string(), "[][]f64");
        assert_eq!(Type::I64.to_string(), "i64");
        assert_eq!(Type::acc_f64(1).to_string(), "acc([]f64)");
    }

    #[test]
    fn differentiability() {
        assert!(Type::F64.is_differentiable());
        assert!(Type::arr_f64(2).is_differentiable());
        assert!(!Type::I64.is_differentiable());
        assert!(!Type::acc_f64(1).is_differentiable());
    }

    #[test]
    fn acc_conversions() {
        let t = Type::arr_f64(2);
        assert_eq!(
            t.to_acc(),
            Type::Acc {
                elem: ScalarType::F64,
                rank: 2
            }
        );
        assert_eq!(t.to_acc().from_acc(), t);
    }
}
