//! Pretty-printing of the IR in a Futhark-flavoured concrete syntax.
//!
//! The output is intended for debugging and for the golden tests in the AD
//! crate; it is not meant to be parsed back.

use std::fmt::{self, Write as _};

use crate::ir::{Atom, BinOp, Body, Const, Exp, Fun, Lambda, ReduceOp, Stm, UnOp};

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn atom_str(a: &Atom) -> String {
    match a {
        Atom::Var(v) => v.to_string(),
        Atom::Const(Const::F64(x)) => format!("{x:?}"),
        Atom::Const(Const::I64(x)) => format!("{x}i64"),
        Atom::Const(Const::Bool(x)) => format!("{x}"),
    }
}

fn atoms_str(atoms: &[Atom]) -> String {
    atoms.iter().map(atom_str).collect::<Vec<_>>().join(", ")
}

fn unop_name(op: UnOp) -> &'static str {
    match op {
        UnOp::Neg => "neg",
        UnOp::Sin => "sin",
        UnOp::Cos => "cos",
        UnOp::Exp => "exp",
        UnOp::Log => "log",
        UnOp::Sqrt => "sqrt",
        UnOp::Tanh => "tanh",
        UnOp::Sigmoid => "sigmoid",
        UnOp::Abs => "abs",
        UnOp::Recip => "recip",
        UnOp::Not => "not",
        UnOp::ToF64 => "f64",
        UnOp::ToI64 => "i64",
    }
}

fn binop_sym(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Pow => "**",
        BinOp::Min => "`min`",
        BinOp::Max => "`max`",
        BinOp::Rem => "%",
        BinOp::Eq => "==",
        BinOp::Neq => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

fn reduce_op_name(op: ReduceOp) -> &'static str {
    match op {
        ReduceOp::Add => "(+)",
        ReduceOp::Mul => "(*)",
        ReduceOp::Min => "min",
        ReduceOp::Max => "max",
    }
}

fn write_lambda(out: &mut String, lam: &Lambda, level: usize) {
    out.push_str("(\\");
    let params: Vec<String> = lam
        .params
        .iter()
        .map(|p| format!("{}: {}", p.var, p.ty))
        .collect();
    out.push_str(&params.join(" "));
    out.push_str(" ->\n");
    write_body(out, &lam.body, level + 1);
    indent(out, level);
    out.push(')');
}

fn write_exp(out: &mut String, e: &Exp, level: usize) {
    match e {
        Exp::Atom(a) => out.push_str(&atom_str(a)),
        Exp::UnOp(op, a) => {
            let _ = write!(out, "{} {}", unop_name(*op), atom_str(a));
        }
        Exp::BinOp(op, a, b) => {
            let _ = write!(out, "{} {} {}", atom_str(a), binop_sym(*op), atom_str(b));
        }
        Exp::Select { cond, t, f } => {
            let _ = write!(
                out,
                "select {} {} {}",
                atom_str(cond),
                atom_str(t),
                atom_str(f)
            );
        }
        Exp::Index { arr, idx } => {
            let _ = write!(out, "{arr}[{}]", atoms_str(idx));
        }
        Exp::Update { arr, idx, val } => {
            let _ = write!(out, "{arr} with [{}] <- {}", atoms_str(idx), atom_str(val));
        }
        Exp::Len(v) => {
            let _ = write!(out, "length {v}");
        }
        Exp::Iota(n) => {
            let _ = write!(out, "iota {}", atom_str(n));
        }
        Exp::Replicate { n, val } => {
            let _ = write!(out, "replicate {} {}", atom_str(n), atom_str(val));
        }
        Exp::Reverse(v) => {
            let _ = write!(out, "reverse {v}");
        }
        Exp::Copy(v) => {
            let _ = write!(out, "copy {v}");
        }
        Exp::If {
            cond,
            then_br,
            else_br,
        } => {
            let _ = writeln!(out, "if {}", atom_str(cond));
            indent(out, level);
            out.push_str("then\n");
            write_body(out, then_br, level + 1);
            indent(out, level);
            out.push_str("else\n");
            write_body(out, else_br, level + 1);
            indent(out, level);
        }
        Exp::Loop {
            params,
            index,
            count,
            body,
        } => {
            let binds: Vec<String> = params
                .iter()
                .map(|(p, init)| format!("{} = {}", p.var, atom_str(init)))
                .collect();
            let _ = writeln!(
                out,
                "loop ({}) for {index} < {} do",
                binds.join(", "),
                atom_str(count)
            );
            write_body(out, body, level + 1);
            indent(out, level);
        }
        Exp::Map { lam, args } => {
            out.push_str("map ");
            write_lambda(out, lam, level);
            for a in args {
                let _ = write!(out, " {a}");
            }
        }
        Exp::Reduce { lam, neutral, args } => {
            out.push_str("reduce ");
            write_lambda(out, lam, level);
            let _ = write!(out, " ({})", atoms_str(neutral));
            for a in args {
                let _ = write!(out, " {a}");
            }
        }
        Exp::Scan { lam, neutral, args } => {
            out.push_str("scan ");
            write_lambda(out, lam, level);
            let _ = write!(out, " ({})", atoms_str(neutral));
            for a in args {
                let _ = write!(out, " {a}");
            }
        }
        Exp::Redomap {
            red_lam,
            map_lam,
            neutral,
            args,
        } => {
            out.push_str("redomap ");
            write_lambda(out, red_lam, level);
            out.push(' ');
            write_lambda(out, map_lam, level);
            let _ = write!(out, " ({})", atoms_str(neutral));
            for a in args {
                let _ = write!(out, " {a}");
            }
        }
        Exp::Hist {
            op,
            num_bins,
            inds,
            vals,
        } => {
            let _ = write!(
                out,
                "reduce_by_index {} {} {inds} {vals}",
                reduce_op_name(*op),
                atom_str(num_bins)
            );
        }
        Exp::Scatter { dest, inds, vals } => {
            let _ = write!(out, "scatter {dest} {inds} {vals}");
        }
        Exp::WithAcc { arrs, lam } => {
            out.push_str("withacc [");
            let names: Vec<String> = arrs.iter().map(|v| v.to_string()).collect();
            out.push_str(&names.join(", "));
            out.push_str("] ");
            write_lambda(out, lam, level);
        }
        Exp::UpdAcc { acc, idx, val } => {
            let _ = write!(out, "upd_acc {acc} [{}] {}", atoms_str(idx), atom_str(val));
        }
    }
}

fn write_body(out: &mut String, b: &Body, level: usize) {
    for Stm { pat, exp } in &b.stms {
        indent(out, level);
        let names: Vec<String> = pat.iter().map(|p| p.var.to_string()).collect();
        if names.len() == 1 {
            let _ = write!(out, "let {} = ", names[0]);
        } else {
            let _ = write!(out, "let ({}) = ", names.join(", "));
        }
        write_exp(out, exp, level);
        out.push('\n');
    }
    indent(out, level);
    let _ = writeln!(out, "in ({})", atoms_str(&b.result));
}

impl fmt::Display for Fun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params: Vec<String> = self
            .params
            .iter()
            .map(|p| format!("({}: {})", p.var, p.ty))
            .collect();
        let rets: Vec<String> = self.ret.iter().map(|t| t.to_string()).collect();
        writeln!(
            f,
            "def {} {} : ({}) =",
            self.name,
            params.join(" "),
            rets.join(", ")
        )?;
        let mut out = String::new();
        write_body(&mut out, &self.body, 1);
        write!(f, "{out}")
    }
}

impl fmt::Display for Body {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_body(&mut out, self, 0);
        write!(f, "{out}")
    }
}

impl fmt::Display for Exp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_exp(&mut out, self, 0);
        write!(f, "{out}")
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::Builder;
    use crate::ir::Atom;
    use crate::types::Type;

    #[test]
    fn prints_a_function() {
        let mut b = Builder::new();
        let f = b.build_fun("square_sum", &[Type::arr_f64(1)], |b, ps| {
            let xs = ps[0];
            let sq = b.map1(Type::arr_f64(1), &[xs], |b, es| {
                let x = Atom::Var(es[0]);
                vec![b.fmul(x, x)]
            });
            vec![Atom::Var(b.sum(sq))]
        });
        let s = f.to_string();
        assert!(s.contains("def square_sum"));
        assert!(s.contains("map"));
        assert!(s.contains("reduce"));
        assert!(s.contains("in ("));
    }

    #[test]
    fn prints_control_flow() {
        let mut b = Builder::new();
        let f = b.build_fun("ctrl", &[Type::F64, Type::I64], |b, ps| {
            let x = Atom::Var(ps[0]);
            let n = Atom::Var(ps[1]);
            let cond = b.lt(x, Atom::f64(0.0));
            let y = b.if_(cond, &[Type::F64], |b| vec![b.fneg(x)], |_b| vec![x]);
            let l = b.loop_(&[(Type::F64, y[0].into())], n, |b, _i, acc| {
                vec![b.fmul(acc[0].into(), x)]
            });
            vec![l[0].into()]
        });
        let s = f.to_string();
        assert!(s.contains("if "));
        assert!(s.contains("loop ("));
        assert!(s.contains("for "));
    }
}
