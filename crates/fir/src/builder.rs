//! A convenience layer for constructing ANF programs.
//!
//! The [`Builder`] keeps a stack of open scopes (statement lists), a supply
//! of fresh variable names and a type environment for every variable it has
//! bound. Workload definitions (`workloads` crate) and the AD transformation
//! (`futhark-ad` crate) both construct IR through it.

use std::collections::HashMap;

use crate::ir::{Atom, BinOp, Body, Exp, Fun, Lambda, Param, ReduceOp, Stm, UnOp, VarId};
use crate::types::Type;

/// An IR construction context.
#[derive(Debug, Clone)]
pub struct Builder {
    next: u32,
    scopes: Vec<Vec<Stm>>,
    types: HashMap<VarId, Type>,
}

impl Default for Builder {
    fn default() -> Self {
        Builder::new()
    }
}

impl Builder {
    /// A new builder with no open scope.
    pub fn new() -> Builder {
        Builder {
            next: 0,
            scopes: vec![],
            types: HashMap::new(),
        }
    }

    /// A builder whose fresh names start above every name used in `f`,
    /// seeded with the types of the function parameters. Used by
    /// transformation passes that extend an existing function.
    pub fn for_fun(f: &Fun) -> Builder {
        let mut b = Builder {
            next: f.max_var() + 1,
            scopes: vec![],
            types: HashMap::new(),
        };
        for p in &f.params {
            b.types.insert(p.var, p.ty);
        }
        b
    }

    /// Generate a fresh variable of the given type.
    pub fn fresh(&mut self, ty: Type) -> VarId {
        let v = VarId(self.next);
        self.next += 1;
        self.types.insert(v, ty);
        v
    }

    /// Record (or overwrite) the type of a variable.
    pub fn set_type(&mut self, v: VarId, ty: Type) {
        self.types.insert(v, ty);
    }

    /// The recorded type of a variable. Panics if unknown.
    pub fn ty_of(&self, v: VarId) -> Type {
        *self
            .types
            .get(&v)
            .unwrap_or_else(|| panic!("Builder::ty_of: unknown variable {v}"))
    }

    /// The type of an atom (constants carry their own type).
    pub fn ty_of_atom(&self, a: &Atom) -> Type {
        match a {
            Atom::Var(v) => self.ty_of(*v),
            Atom::Const(c) => c.ty(),
        }
    }

    /// Open a new scope; statements bound until the matching
    /// [`Builder::end_scope`] belong to it.
    pub fn begin_scope(&mut self) {
        self.scopes.push(vec![]);
    }

    /// Close the innermost scope and return its statements.
    pub fn end_scope(&mut self) -> Vec<Stm> {
        self.scopes
            .pop()
            .expect("Builder::end_scope: no open scope")
    }

    /// Append a pre-built statement to the innermost scope, recording the
    /// types of the variables it binds.
    pub fn push_stm(&mut self, stm: Stm) {
        for p in &stm.pat {
            self.types.insert(p.var, p.ty);
        }
        self.scopes
            .last_mut()
            .expect("Builder::push_stm: no open scope")
            .push(stm);
    }

    /// Bind a multi-valued expression, returning one fresh variable per
    /// result type.
    pub fn bind(&mut self, tys: &[Type], exp: Exp) -> Vec<VarId> {
        let pat: Vec<Param> = tys.iter().map(|t| Param::new(self.fresh(*t), *t)).collect();
        let vars = pat.iter().map(|p| p.var).collect();
        self.push_stm(Stm::new(pat, exp));
        vars
    }

    /// Bind a single-valued expression.
    pub fn bind1(&mut self, ty: Type, exp: Exp) -> VarId {
        self.bind(&[ty], exp)[0]
    }

    // ---------------------------------------------------------------
    // Scalar helpers (return atoms)
    // ---------------------------------------------------------------

    fn unop(&mut self, op: UnOp, a: Atom, ty: Type) -> Atom {
        Atom::Var(self.bind1(ty, Exp::UnOp(op, a)))
    }

    fn binop(&mut self, op: BinOp, a: Atom, b: Atom, ty: Type) -> Atom {
        Atom::Var(self.bind1(ty, Exp::BinOp(op, a, b)))
    }

    /// `a + b` on `f64`.
    pub fn fadd(&mut self, a: Atom, b: Atom) -> Atom {
        self.binop(BinOp::Add, a, b, Type::F64)
    }
    /// `a - b` on `f64`.
    pub fn fsub(&mut self, a: Atom, b: Atom) -> Atom {
        self.binop(BinOp::Sub, a, b, Type::F64)
    }
    /// `a * b` on `f64`.
    pub fn fmul(&mut self, a: Atom, b: Atom) -> Atom {
        self.binop(BinOp::Mul, a, b, Type::F64)
    }
    /// `a / b` on `f64`.
    pub fn fdiv(&mut self, a: Atom, b: Atom) -> Atom {
        self.binop(BinOp::Div, a, b, Type::F64)
    }
    /// `a.powf(b)`.
    pub fn fpow(&mut self, a: Atom, b: Atom) -> Atom {
        self.binop(BinOp::Pow, a, b, Type::F64)
    }
    /// `a.max(b)` on `f64`.
    pub fn fmax(&mut self, a: Atom, b: Atom) -> Atom {
        self.binop(BinOp::Max, a, b, Type::F64)
    }
    /// `a.min(b)` on `f64`.
    pub fn fmin(&mut self, a: Atom, b: Atom) -> Atom {
        self.binop(BinOp::Min, a, b, Type::F64)
    }
    /// `-a` on `f64`.
    pub fn fneg(&mut self, a: Atom) -> Atom {
        self.unop(UnOp::Neg, a, Type::F64)
    }
    /// `exp a`.
    pub fn fexp(&mut self, a: Atom) -> Atom {
        self.unop(UnOp::Exp, a, Type::F64)
    }
    /// `log a`.
    pub fn flog(&mut self, a: Atom) -> Atom {
        self.unop(UnOp::Log, a, Type::F64)
    }
    /// `sqrt a`.
    pub fn fsqrt(&mut self, a: Atom) -> Atom {
        self.unop(UnOp::Sqrt, a, Type::F64)
    }
    /// `sin a`.
    pub fn fsin(&mut self, a: Atom) -> Atom {
        self.unop(UnOp::Sin, a, Type::F64)
    }
    /// `cos a`.
    pub fn fcos(&mut self, a: Atom) -> Atom {
        self.unop(UnOp::Cos, a, Type::F64)
    }
    /// `tanh a`.
    pub fn ftanh(&mut self, a: Atom) -> Atom {
        self.unop(UnOp::Tanh, a, Type::F64)
    }
    /// Logistic sigmoid.
    pub fn fsigmoid(&mut self, a: Atom) -> Atom {
        self.unop(UnOp::Sigmoid, a, Type::F64)
    }
    /// `abs a` on `f64`.
    pub fn fabs(&mut self, a: Atom) -> Atom {
        self.unop(UnOp::Abs, a, Type::F64)
    }
    /// `1 / a`.
    pub fn frecip(&mut self, a: Atom) -> Atom {
        self.unop(UnOp::Recip, a, Type::F64)
    }

    /// `a + b` on `i64`.
    pub fn iadd(&mut self, a: Atom, b: Atom) -> Atom {
        self.binop(BinOp::Add, a, b, Type::I64)
    }
    /// `a - b` on `i64`.
    pub fn isub(&mut self, a: Atom, b: Atom) -> Atom {
        self.binop(BinOp::Sub, a, b, Type::I64)
    }
    /// `a * b` on `i64`.
    pub fn imul(&mut self, a: Atom, b: Atom) -> Atom {
        self.binop(BinOp::Mul, a, b, Type::I64)
    }
    /// `a % b` on `i64`.
    pub fn irem(&mut self, a: Atom, b: Atom) -> Atom {
        self.binop(BinOp::Rem, a, b, Type::I64)
    }
    /// `a / b` on `i64`.
    pub fn idiv(&mut self, a: Atom, b: Atom) -> Atom {
        self.binop(BinOp::Div, a, b, Type::I64)
    }
    /// `a.min(b)` on `i64`.
    pub fn imin(&mut self, a: Atom, b: Atom) -> Atom {
        self.binop(BinOp::Min, a, b, Type::I64)
    }

    /// Comparison helpers (result `bool`).
    pub fn lt(&mut self, a: Atom, b: Atom) -> Atom {
        self.binop(BinOp::Lt, a, b, Type::BOOL)
    }
    pub fn le(&mut self, a: Atom, b: Atom) -> Atom {
        self.binop(BinOp::Le, a, b, Type::BOOL)
    }
    pub fn gt(&mut self, a: Atom, b: Atom) -> Atom {
        self.binop(BinOp::Gt, a, b, Type::BOOL)
    }
    pub fn ge(&mut self, a: Atom, b: Atom) -> Atom {
        self.binop(BinOp::Ge, a, b, Type::BOOL)
    }
    pub fn eq(&mut self, a: Atom, b: Atom) -> Atom {
        self.binop(BinOp::Eq, a, b, Type::BOOL)
    }
    pub fn and(&mut self, a: Atom, b: Atom) -> Atom {
        self.binop(BinOp::And, a, b, Type::BOOL)
    }
    pub fn or(&mut self, a: Atom, b: Atom) -> Atom {
        self.binop(BinOp::Or, a, b, Type::BOOL)
    }
    pub fn not(&mut self, a: Atom) -> Atom {
        self.unop(UnOp::Not, a, Type::BOOL)
    }

    /// `i64` → `f64` conversion.
    pub fn to_f64(&mut self, a: Atom) -> Atom {
        self.unop(UnOp::ToF64, a, Type::F64)
    }
    /// `f64` → `i64` conversion (truncation).
    pub fn to_i64(&mut self, a: Atom) -> Atom {
        self.unop(UnOp::ToI64, a, Type::I64)
    }

    /// Scalar `if cond then t else f` (no scope).
    pub fn select(&mut self, cond: Atom, t: Atom, f: Atom) -> Atom {
        let ty = self.ty_of_atom(&t);
        Atom::Var(self.bind1(ty, Exp::Select { cond, t, f }))
    }

    // ---------------------------------------------------------------
    // Array helpers
    // ---------------------------------------------------------------

    /// `arr[idx...]`.
    pub fn index(&mut self, arr: VarId, idx: &[Atom]) -> VarId {
        let ty = self.ty_of(arr).index(idx.len());
        self.bind1(
            ty,
            Exp::Index {
                arr,
                idx: idx.to_vec(),
            },
        )
    }

    /// `arr with [idx...] <- val`.
    pub fn update(&mut self, arr: VarId, idx: &[Atom], val: Atom) -> VarId {
        let ty = self.ty_of(arr);
        self.bind1(
            ty,
            Exp::Update {
                arr,
                idx: idx.to_vec(),
                val,
            },
        )
    }

    /// Outer length of an array.
    pub fn len(&mut self, arr: VarId) -> Atom {
        Atom::Var(self.bind1(Type::I64, Exp::Len(arr)))
    }

    /// `iota n`.
    pub fn iota(&mut self, n: Atom) -> VarId {
        self.bind1(Type::arr_i64(1), Exp::Iota(n))
    }

    /// `replicate n val`.
    pub fn replicate(&mut self, n: Atom, val: Atom) -> VarId {
        let ty = self.ty_of_atom(&val).lift();
        self.bind1(ty, Exp::Replicate { n, val })
    }

    /// Reverse an array along its outer dimension.
    pub fn reverse(&mut self, arr: VarId) -> VarId {
        let ty = self.ty_of(arr);
        self.bind1(ty, Exp::Reverse(arr))
    }

    /// Explicit copy.
    pub fn copy(&mut self, arr: VarId) -> VarId {
        let ty = self.ty_of(arr);
        self.bind1(ty, Exp::Copy(arr))
    }

    // ---------------------------------------------------------------
    // Structured constructs
    // ---------------------------------------------------------------

    /// Build a lambda with the given parameter types. The closure receives
    /// the parameter variables and returns the result atoms; `ret` types are
    /// inferred from those atoms.
    pub fn lambda(
        &mut self,
        param_tys: &[Type],
        f: impl FnOnce(&mut Builder, &[VarId]) -> Vec<Atom>,
    ) -> Lambda {
        let params: Vec<Param> = param_tys
            .iter()
            .map(|t| Param::new(self.fresh(*t), *t))
            .collect();
        let vars: Vec<VarId> = params.iter().map(|p| p.var).collect();
        self.begin_scope();
        let result = f(self, &vars);
        let stms = self.end_scope();
        let ret = result.iter().map(|a| self.ty_of_atom(a)).collect();
        Lambda {
            params,
            body: Body::new(stms, result),
            ret,
        }
    }

    /// `if cond then ... else ...` returning values of types `ret`.
    pub fn if_(
        &mut self,
        cond: Atom,
        ret: &[Type],
        then_f: impl FnOnce(&mut Builder) -> Vec<Atom>,
        else_f: impl FnOnce(&mut Builder) -> Vec<Atom>,
    ) -> Vec<VarId> {
        self.begin_scope();
        let tres = then_f(self);
        let tstms = self.end_scope();
        self.begin_scope();
        let eres = else_f(self);
        let estms = self.end_scope();
        self.bind(
            ret,
            Exp::If {
                cond,
                then_br: Body::new(tstms, tres),
                else_br: Body::new(estms, eres),
            },
        )
    }

    /// A sequential loop. `inits` gives the loop-variant parameters (type
    /// and initial value); the closure receives the iteration index and the
    /// current parameter values and returns their next values.
    pub fn loop_(
        &mut self,
        inits: &[(Type, Atom)],
        count: Atom,
        f: impl FnOnce(&mut Builder, VarId, &[VarId]) -> Vec<Atom>,
    ) -> Vec<VarId> {
        let params: Vec<(Param, Atom)> = inits
            .iter()
            .map(|(t, init)| (Param::new(self.fresh(*t), *t), *init))
            .collect();
        let index = self.fresh(Type::I64);
        let vars: Vec<VarId> = params.iter().map(|(p, _)| p.var).collect();
        self.begin_scope();
        let result = f(self, index, &vars);
        let stms = self.end_scope();
        let tys: Vec<Type> = inits.iter().map(|(t, _)| *t).collect();
        self.bind(
            &tys,
            Exp::Loop {
                params,
                index,
                count,
                body: Body::new(stms, result),
            },
        )
    }

    /// `map` with any number of inputs and outputs. `out_tys` are the types
    /// of the *result arrays*; the closure receives the element variables.
    pub fn map(
        &mut self,
        out_tys: &[Type],
        args: &[VarId],
        f: impl FnOnce(&mut Builder, &[VarId]) -> Vec<Atom>,
    ) -> Vec<VarId> {
        // Accumulator arguments are passed through unpeeled: an array of
        // accumulators is implicitly the accumulator itself (§5.4).
        let elem_tys: Vec<Type> = args
            .iter()
            .map(|a| {
                let t = self.ty_of(*a);
                if t.is_acc() {
                    t
                } else {
                    t.peel()
                }
            })
            .collect();
        let lam = self.lambda(&elem_tys, f);
        self.bind(
            out_tys,
            Exp::Map {
                lam,
                args: args.to_vec(),
            },
        )
    }

    /// `map` with a single result array.
    pub fn map1(
        &mut self,
        out_ty: Type,
        args: &[VarId],
        f: impl FnOnce(&mut Builder, &[VarId]) -> Vec<Atom>,
    ) -> VarId {
        self.map(&[out_ty], args, f)[0]
    }

    /// General `reduce` with an explicit binary lambda. The lambda receives
    /// `2 * k` parameters for `k` reduced arrays.
    pub fn reduce(
        &mut self,
        out_tys: &[Type],
        neutral: &[Atom],
        args: &[VarId],
        f: impl FnOnce(&mut Builder, &[VarId]) -> Vec<Atom>,
    ) -> Vec<VarId> {
        let elem_tys: Vec<Type> = args.iter().map(|a| self.ty_of(*a).peel()).collect();
        let mut lam_tys = elem_tys.clone();
        lam_tys.extend(elem_tys);
        let lam = self.lambda(&lam_tys, f);
        self.bind(
            out_tys,
            Exp::Reduce {
                lam,
                neutral: neutral.to_vec(),
                args: args.to_vec(),
            },
        )
    }

    /// `reduce` of a single `f64` array with a recognized commutative
    /// operator.
    pub fn reduce_op(&mut self, op: ReduceOp, arr: VarId) -> VarId {
        let ne = Atom::f64(op.neutral_f64());
        self.reduce(&[Type::F64], &[ne], &[arr], |b, ps| {
            vec![b.binop(op.binop(), ps[0].into(), ps[1].into(), Type::F64)]
        })[0]
    }

    /// Sum of a `f64` array.
    pub fn sum(&mut self, arr: VarId) -> VarId {
        self.reduce_op(ReduceOp::Add, arr)
    }

    /// Maximum of a `f64` array.
    pub fn maximum(&mut self, arr: VarId) -> VarId {
        self.reduce_op(ReduceOp::Max, arr)
    }

    /// Minimum of a `f64` array.
    pub fn minimum(&mut self, arr: VarId) -> VarId {
        self.reduce_op(ReduceOp::Min, arr)
    }

    /// Inclusive `scan` with an explicit binary lambda.
    pub fn scan(
        &mut self,
        out_tys: &[Type],
        neutral: &[Atom],
        args: &[VarId],
        f: impl FnOnce(&mut Builder, &[VarId]) -> Vec<Atom>,
    ) -> Vec<VarId> {
        let elem_tys: Vec<Type> = args.iter().map(|a| self.ty_of(*a).peel()).collect();
        let mut lam_tys = elem_tys.clone();
        lam_tys.extend(elem_tys);
        let lam = self.lambda(&lam_tys, f);
        self.bind(
            out_tys,
            Exp::Scan {
                lam,
                neutral: neutral.to_vec(),
                args: args.to_vec(),
            },
        )
    }

    /// Fused `reduce ∘ map` (`redomap`). `out_tys` are the reduced result
    /// types (one per mapped result); `map_f` builds the mapped function
    /// over the element variables of `args`, `red_f` the associative
    /// combining operator over `2 * |out_tys|` parameters.
    pub fn redomap(
        &mut self,
        out_tys: &[Type],
        neutral: &[Atom],
        args: &[VarId],
        map_f: impl FnOnce(&mut Builder, &[VarId]) -> Vec<Atom>,
        red_f: impl FnOnce(&mut Builder, &[VarId]) -> Vec<Atom>,
    ) -> Vec<VarId> {
        let elem_tys: Vec<Type> = args.iter().map(|a| self.ty_of(*a).peel()).collect();
        let map_lam = self.lambda(&elem_tys, map_f);
        let mut red_tys: Vec<Type> = out_tys.to_vec();
        red_tys.extend(out_tys.iter().copied());
        let red_lam = self.lambda(&red_tys, red_f);
        self.bind(
            out_tys,
            Exp::Redomap {
                red_lam,
                map_lam,
                neutral: neutral.to_vec(),
                args: args.to_vec(),
            },
        )
    }

    /// Inclusive prefix sum of a `f64` array.
    pub fn scan_add(&mut self, arr: VarId) -> VarId {
        let ty = self.ty_of(arr);
        self.scan(&[ty], &[Atom::f64(0.0)], &[arr], |b, ps| {
            vec![b.fadd(ps[0].into(), ps[1].into())]
        })[0]
    }

    /// `reduce_by_index` (generalized histogram).
    pub fn hist(&mut self, op: ReduceOp, num_bins: Atom, inds: VarId, vals: VarId) -> VarId {
        let ty = self.ty_of(vals);
        self.bind1(
            ty,
            Exp::Hist {
                op,
                num_bins,
                inds,
                vals,
            },
        )
    }

    /// `scatter dest inds vals`.
    pub fn scatter(&mut self, dest: VarId, inds: VarId, vals: VarId) -> VarId {
        let ty = self.ty_of(dest);
        self.bind1(ty, Exp::Scatter { dest, inds, vals })
    }

    /// `withacc arrs lam` where the lambda is built by the closure; the
    /// closure receives the accumulator variables. Only the updated arrays
    /// are returned (no secondary results).
    pub fn with_acc(
        &mut self,
        arrs: &[VarId],
        f: impl FnOnce(&mut Builder, &[VarId]) -> Vec<Atom>,
    ) -> Vec<VarId> {
        let acc_tys: Vec<Type> = arrs.iter().map(|a| self.ty_of(*a).to_acc()).collect();
        let lam = self.lambda(&acc_tys, f);
        let out_tys: Vec<Type> = arrs.iter().map(|a| self.ty_of(*a)).collect();
        self.bind(
            &out_tys,
            Exp::WithAcc {
                arrs: arrs.to_vec(),
                lam,
            },
        )
    }

    /// `upd_acc acc idx val`.
    pub fn upd_acc(&mut self, acc: VarId, idx: &[Atom], val: Atom) -> VarId {
        let ty = self.ty_of(acc);
        self.bind1(
            ty,
            Exp::UpdAcc {
                acc,
                idx: idx.to_vec(),
                val,
            },
        )
    }

    // ---------------------------------------------------------------
    // Functions
    // ---------------------------------------------------------------

    /// Build a complete function. The closure receives the parameter
    /// variables and returns the result atoms.
    pub fn build_fun(
        &mut self,
        name: &str,
        param_tys: &[Type],
        f: impl FnOnce(&mut Builder, &[VarId]) -> Vec<Atom>,
    ) -> Fun {
        let params: Vec<Param> = param_tys
            .iter()
            .map(|t| Param::new(self.fresh(*t), *t))
            .collect();
        let vars: Vec<VarId> = params.iter().map(|p| p.var).collect();
        self.begin_scope();
        let result = f(self, &vars);
        let stms = self.end_scope();
        let ret = result.iter().map(|a| self.ty_of_atom(a)).collect();
        Fun {
            name: name.to_string(),
            params,
            body: Body::new(stms, result),
            ret,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_function() {
        let mut b = Builder::new();
        let f = b.build_fun("poly", &[Type::F64, Type::F64], |b, ps| {
            let x = Atom::Var(ps[0]);
            let y = Atom::Var(ps[1]);
            let xy = b.fmul(x, y);
            let s = b.fsin(x);
            vec![b.fadd(xy, s)]
        });
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, vec![Type::F64]);
        assert_eq!(f.body.stms.len(), 3);
    }

    #[test]
    fn nested_map_types() {
        let mut b = Builder::new();
        let f = b.build_fun("mss", &[Type::arr_f64(2)], |b, ps| {
            let xss = ps[0];
            let out = b.map1(Type::arr_f64(2), &[xss], |b, rows| {
                let row = rows[0];
                let r = b.map1(Type::arr_f64(1), &[row], |b, xs| {
                    let x = Atom::Var(xs[0]);
                    vec![b.fmul(x, x)]
                });
                vec![Atom::Var(r)]
            });
            vec![Atom::Var(out)]
        });
        assert_eq!(f.ret, vec![Type::arr_f64(2)]);
        // A single map statement at the top level.
        assert_eq!(f.body.stms.len(), 1);
        match &f.body.stms[0].exp {
            Exp::Map { lam, .. } => {
                assert_eq!(lam.params[0].ty, Type::arr_f64(1));
                assert_eq!(lam.ret, vec![Type::arr_f64(1)]);
            }
            other => panic!("expected map, got {}", other.kind()),
        }
    }

    #[test]
    fn loop_builds_params() {
        let mut b = Builder::new();
        let f = b.build_fun("powloop", &[Type::F64, Type::I64], |b, ps| {
            let x = Atom::Var(ps[0]);
            let n = Atom::Var(ps[1]);
            let r = b.loop_(&[(Type::F64, Atom::f64(1.0))], n, |b, _i, acc| {
                vec![b.fmul(acc[0].into(), x)]
            });
            vec![r[0].into()]
        });
        match &f.body.stms[0].exp {
            Exp::Loop { params, .. } => assert_eq!(params.len(), 1),
            other => panic!("expected loop, got {}", other.kind()),
        }
    }

    #[test]
    fn builder_tracks_types() {
        let mut b = Builder::new();
        b.begin_scope();
        let xs = b.fresh(Type::arr_f64(2));
        let row = b.index(xs, &[Atom::i64(0)]);
        assert_eq!(b.ty_of(row), Type::arr_f64(1));
        let x = b.index(row, &[Atom::i64(1)]);
        assert_eq!(b.ty_of(x), Type::F64);
        let _ = b.end_scope();
    }

    #[test]
    fn reduce_and_scan_helpers() {
        let mut b = Builder::new();
        let f = b.build_fun("redscan", &[Type::arr_f64(1)], |b, ps| {
            let xs = ps[0];
            let s = b.sum(xs);
            let m = b.maximum(xs);
            let ps_ = b.scan_add(xs);
            let first = b.index(ps_, &[Atom::i64(0)]);
            let t = b.fadd(s.into(), m.into());
            vec![b.fadd(t, first.into())]
        });
        assert_eq!(f.ret, vec![Type::F64]);
    }
}
