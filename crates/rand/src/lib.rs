//! An offline, dependency-free stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no crates.io registry, so the
//! real `rand` cannot be resolved. The workloads only use a tiny slice of
//! its API — `SmallRng::seed_from_u64` plus `Rng::gen_range` over `f64`,
//! `usize` and `i64` ranges — which this crate reimplements with the same
//! signatures on top of xoshiro256++ seeded via splitmix64. Determinism per
//! seed is all the workloads need (synthetic data generation); the streams
//! do not match the real `rand`'s.

use std::ops::Range;

/// Core random-number-generator interface (subset of `rand::RngCore`).
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create an RNG deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can parameterize `Rng::gen_range` (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw a value in the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        // 53 uniformly random mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling; the modulo bias over a
                // 128-bit product is negligible for synthetic data.
                let r = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + r) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniformly random value in the given (half-open) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A uniformly random `f64` in `[0, 1)`.
    fn gen(&mut self) -> f64 {
        self.gen_range(0.0..1.0)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++ (the same
    /// algorithm family the real `SmallRng` uses on 64-bit platforms).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0), b.gen_range(0.0..1.0));
        }
    }

    #[test]
    fn float_ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&x));
        }
    }

    #[test]
    fn integer_ranges_are_respected_and_cover() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let i = rng.gen_range(0..5usize);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let i = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
