//! The versioned binary codec for compiled programs and their IR.
//!
//! Layout of every framed document:
//!
//! ```text
//! offset 0  magic      b"FIRC"
//! offset 4  version    u32 LE  (FORMAT_VERSION)
//! offset 8  length     u64 LE  (payload byte count)
//! offset 16 checksum   u64 LE  (FNV-1a 64 of the payload)
//! offset 24 payload
//! ```
//!
//! All integers are little-endian fixed width; `f64` travels as its IEEE
//! bit pattern (`to_bits`), so NaN payloads and signed zeros round-trip
//! bitwise. Enums are encoded as explicit `u8` tags assigned here (not
//! via `as` casts of declaration order), so reordering a Rust enum can
//! never silently change the on-disk format — it either keeps the tag or
//! fails to compile the codec.
//!
//! Decoding is total: hostile, truncated, or corrupt input returns a
//! typed [`CacheError`], never a panic and never a fabricated program. On
//! top of the checksum, every decoded [`Program`] passes structural
//! validation ([`validate_program`]) — register operands in range, kernel
//! indices in range, jump targets within the instruction stream — so even
//! a forged document that clears the checksum cannot make the VM index
//! out of bounds.

use std::fmt;

use fir::ir::{Atom, BinOp, Body, Const, Exp, Fun, Lambda, Param, ReduceOp, Stm, UnOp, VarId};
use fir::types::{ScalarType, Type};
use firvm::bytecode::{CodeObject, Instr, Opnd, Reg};
use firvm::{Kernel, Program};

/// The on-disk format version. Bump on any change to the byte layout;
/// decoders reject every version but their own (the store then recompiles
/// and overwrites).
pub const FORMAT_VERSION: u32 = 1;

/// The four magic bytes opening every framed document.
pub const MAGIC: [u8; 4] = *b"FIRC";

/// Frame header size: magic + version + payload length + checksum.
const HEADER_LEN: usize = 4 + 4 + 8 + 8;

/// A register-file bound no real program approaches (the largest workload
/// compiles to a few thousand registers); a decoded frame size past it is
/// hostile input, not a program.
const MAX_REGS: usize = 1 << 24;

/// What went wrong decoding a document. Every variant is a typed error —
/// decode never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// The document does not start with [`MAGIC`].
    BadMagic,
    /// The document's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion {
        /// The version the document claims.
        found: u32,
    },
    /// The input ended before the value at `at` could be read.
    Truncated {
        /// Byte offset of the read that ran out of input.
        at: usize,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch,
    /// The declared payload length disagrees with the document size.
    LengthMismatch {
        /// Payload bytes the header declares.
        declared: u64,
        /// Payload bytes actually present.
        actual: u64,
    },
    /// An enum tag outside the encodable range.
    BadTag {
        /// Which encoded type the tag belongs to.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// Structurally invalid content (out-of-range register, kernel index,
    /// jump target, absurd length, key-field mismatch, ...).
    Malformed {
        /// What exactly is malformed.
        what: String,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::BadMagic => write!(f, "not a fir-cache document (bad magic)"),
            CacheError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "format version {found} (this build reads {FORMAT_VERSION})"
                )
            }
            CacheError::Truncated { at } => write!(f, "truncated at byte {at}"),
            CacheError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            CacheError::LengthMismatch { declared, actual } => {
                write!(f, "payload length {declared} declared, {actual} present")
            }
            CacheError::BadTag { what, tag } => write!(f, "invalid {what} tag {tag:#04x}"),
            CacheError::Malformed { what } => write!(f, "malformed document: {what}"),
        }
    }
}

impl std::error::Error for CacheError {}

fn malformed(what: impl Into<String>) -> CacheError {
    CacheError::Malformed { what: what.into() }
}

/// FNV-1a 64 over `bytes` (the workspace is dependency-free; this is the
/// payload checksum, an integrity check against torn or flipped bytes,
/// not a cryptographic authenticator — decoded programs are additionally
/// structurally validated).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Primitive writer / reader
// ---------------------------------------------------------------------

/// Append-only payload writer.
#[derive(Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn len(&mut self, v: usize) {
        self.u64(v as u64);
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Wrap the accumulated payload in the framed document header.
    pub(crate) fn frame(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.buf.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.buf.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a(&self.buf).to_le_bytes());
        out.extend_from_slice(&self.buf);
        out
    }
}

/// Bounds-checked payload reader.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CacheError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(CacheError::Truncated { at: self.pos })?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CacheError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn bool(&mut self) -> Result<bool, CacheError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CacheError::BadTag { what: "bool", tag }),
        }
    }

    pub(crate) fn u32(&mut self) -> Result<u32, CacheError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, CacheError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub(crate) fn i64(&mut self) -> Result<i64, CacheError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, CacheError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A collection length, sanity-bounded by the remaining input: every
    /// encoded element is at least one byte, so a length past `remaining`
    /// is hostile — reject it before any allocation happens.
    pub(crate) fn len(&mut self) -> Result<usize, CacheError> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(malformed(format!(
                "length {n} exceeds the {} bytes left in the document",
                self.remaining()
            )));
        }
        Ok(n as usize)
    }

    pub(crate) fn str(&mut self) -> Result<String, CacheError> {
        let n = self.len()?;
        let at = self.pos;
        std::str::from_utf8(self.take(n)?)
            .map(str::to_string)
            .map_err(|_| malformed(format!("invalid UTF-8 string at byte {at}")))
    }
}

/// Strip and verify the frame header, returning a reader over the
/// checksummed payload.
pub(crate) fn open_frame(bytes: &[u8]) -> Result<Reader<'_>, CacheError> {
    if bytes.len() < 4 {
        return Err(CacheError::BadMagic);
    }
    if bytes[0..4] != MAGIC {
        return Err(CacheError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(CacheError::Truncated { at: bytes.len() });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4"));
    if version != FORMAT_VERSION {
        return Err(CacheError::UnsupportedVersion { found: version });
    }
    let declared = u64::from_le_bytes(bytes[8..16].try_into().expect("8"));
    let checksum = u64::from_le_bytes(bytes[16..24].try_into().expect("8"));
    let payload = &bytes[HEADER_LEN..];
    if declared != payload.len() as u64 {
        return Err(CacheError::LengthMismatch {
            declared,
            actual: payload.len() as u64,
        });
    }
    if fnv1a(payload) != checksum {
        return Err(CacheError::ChecksumMismatch);
    }
    Ok(Reader {
        bytes: payload,
        pos: 0,
    })
}

/// Error unless the reader consumed its whole payload.
pub(crate) fn finish(r: &Reader<'_>) -> Result<(), CacheError> {
    if r.remaining() != 0 {
        return Err(malformed(format!(
            "{} trailing payload bytes after the document body",
            r.remaining()
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// IR (fir::ir) encoding
// ---------------------------------------------------------------------

fn emit_scalar_type(w: &mut Writer, t: ScalarType) {
    w.u8(match t {
        ScalarType::F64 => 0,
        ScalarType::I64 => 1,
        ScalarType::Bool => 2,
    });
}

fn read_scalar_type(r: &mut Reader<'_>) -> Result<ScalarType, CacheError> {
    match r.u8()? {
        0 => Ok(ScalarType::F64),
        1 => Ok(ScalarType::I64),
        2 => Ok(ScalarType::Bool),
        tag => Err(CacheError::BadTag {
            what: "scalar type",
            tag,
        }),
    }
}

fn emit_type(w: &mut Writer, t: &Type) {
    match t {
        Type::Scalar(s) => {
            w.u8(0);
            emit_scalar_type(w, *s);
        }
        Type::Array { elem, rank } => {
            w.u8(1);
            emit_scalar_type(w, *elem);
            w.len(*rank);
        }
        Type::Acc { elem, rank } => {
            w.u8(2);
            emit_scalar_type(w, *elem);
            w.len(*rank);
        }
    }
}

fn read_type(r: &mut Reader<'_>) -> Result<Type, CacheError> {
    match r.u8()? {
        0 => Ok(Type::Scalar(read_scalar_type(r)?)),
        1 => Ok(Type::Array {
            elem: read_scalar_type(r)?,
            rank: r.u64()? as usize,
        }),
        2 => Ok(Type::Acc {
            elem: read_scalar_type(r)?,
            rank: r.u64()? as usize,
        }),
        tag => Err(CacheError::BadTag { what: "type", tag }),
    }
}

fn emit_types(w: &mut Writer, ts: &[Type]) {
    w.len(ts.len());
    for t in ts {
        emit_type(w, t);
    }
}

fn read_types(r: &mut Reader<'_>) -> Result<Vec<Type>, CacheError> {
    let n = r.len()?;
    (0..n).map(|_| read_type(r)).collect()
}

fn emit_atom(w: &mut Writer, a: &Atom) {
    match a {
        Atom::Var(VarId(v)) => {
            w.u8(0);
            w.u32(*v);
        }
        Atom::Const(Const::F64(x)) => {
            w.u8(1);
            w.f64(*x);
        }
        Atom::Const(Const::I64(x)) => {
            w.u8(2);
            w.i64(*x);
        }
        Atom::Const(Const::Bool(x)) => {
            w.u8(3);
            w.bool(*x);
        }
    }
}

fn read_atom(r: &mut Reader<'_>) -> Result<Atom, CacheError> {
    match r.u8()? {
        0 => Ok(Atom::Var(VarId(r.u32()?))),
        1 => Ok(Atom::Const(Const::F64(r.f64()?))),
        2 => Ok(Atom::Const(Const::I64(r.i64()?))),
        3 => Ok(Atom::Const(Const::Bool(r.bool()?))),
        tag => Err(CacheError::BadTag { what: "atom", tag }),
    }
}

fn emit_atoms(w: &mut Writer, atoms: &[Atom]) {
    w.len(atoms.len());
    for a in atoms {
        emit_atom(w, a);
    }
}

fn read_atoms(r: &mut Reader<'_>) -> Result<Vec<Atom>, CacheError> {
    let n = r.len()?;
    (0..n).map(|_| read_atom(r)).collect()
}

fn emit_var(w: &mut Writer, v: VarId) {
    w.u32(v.0);
}

fn read_var(r: &mut Reader<'_>) -> Result<VarId, CacheError> {
    Ok(VarId(r.u32()?))
}

fn emit_vars(w: &mut Writer, vs: &[VarId]) {
    w.len(vs.len());
    for v in vs {
        emit_var(w, *v);
    }
}

fn read_vars(r: &mut Reader<'_>) -> Result<Vec<VarId>, CacheError> {
    let n = r.len()?;
    (0..n).map(|_| read_var(r)).collect()
}

fn un_op_tag(op: UnOp) -> u8 {
    match op {
        UnOp::Neg => 0,
        UnOp::Sin => 1,
        UnOp::Cos => 2,
        UnOp::Exp => 3,
        UnOp::Log => 4,
        UnOp::Sqrt => 5,
        UnOp::Tanh => 6,
        UnOp::Sigmoid => 7,
        UnOp::Abs => 8,
        UnOp::Recip => 9,
        UnOp::Not => 10,
        UnOp::ToF64 => 11,
        UnOp::ToI64 => 12,
    }
}

fn read_un_op(r: &mut Reader<'_>) -> Result<UnOp, CacheError> {
    Ok(match r.u8()? {
        0 => UnOp::Neg,
        1 => UnOp::Sin,
        2 => UnOp::Cos,
        3 => UnOp::Exp,
        4 => UnOp::Log,
        5 => UnOp::Sqrt,
        6 => UnOp::Tanh,
        7 => UnOp::Sigmoid,
        8 => UnOp::Abs,
        9 => UnOp::Recip,
        10 => UnOp::Not,
        11 => UnOp::ToF64,
        12 => UnOp::ToI64,
        tag => return Err(CacheError::BadTag { what: "unop", tag }),
    })
}

fn bin_op_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Pow => 4,
        BinOp::Min => 5,
        BinOp::Max => 6,
        BinOp::Rem => 7,
        BinOp::Eq => 8,
        BinOp::Neq => 9,
        BinOp::Lt => 10,
        BinOp::Le => 11,
        BinOp::Gt => 12,
        BinOp::Ge => 13,
        BinOp::And => 14,
        BinOp::Or => 15,
    }
}

fn read_bin_op(r: &mut Reader<'_>) -> Result<BinOp, CacheError> {
    Ok(match r.u8()? {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Pow,
        5 => BinOp::Min,
        6 => BinOp::Max,
        7 => BinOp::Rem,
        8 => BinOp::Eq,
        9 => BinOp::Neq,
        10 => BinOp::Lt,
        11 => BinOp::Le,
        12 => BinOp::Gt,
        13 => BinOp::Ge,
        14 => BinOp::And,
        15 => BinOp::Or,
        tag => return Err(CacheError::BadTag { what: "binop", tag }),
    })
}

fn reduce_op_tag(op: ReduceOp) -> u8 {
    match op {
        ReduceOp::Add => 0,
        ReduceOp::Mul => 1,
        ReduceOp::Min => 2,
        ReduceOp::Max => 3,
    }
}

fn read_reduce_op(r: &mut Reader<'_>) -> Result<ReduceOp, CacheError> {
    Ok(match r.u8()? {
        0 => ReduceOp::Add,
        1 => ReduceOp::Mul,
        2 => ReduceOp::Min,
        3 => ReduceOp::Max,
        tag => {
            return Err(CacheError::BadTag {
                what: "reduce op",
                tag,
            })
        }
    })
}

fn emit_params(w: &mut Writer, ps: &[Param]) {
    w.len(ps.len());
    for p in ps {
        emit_var(w, p.var);
        emit_type(w, &p.ty);
    }
}

fn read_params(r: &mut Reader<'_>) -> Result<Vec<Param>, CacheError> {
    let n = r.len()?;
    (0..n)
        .map(|_| {
            Ok(Param {
                var: read_var(r)?,
                ty: read_type(r)?,
            })
        })
        .collect()
}

fn emit_lambda(w: &mut Writer, l: &Lambda) {
    emit_params(w, &l.params);
    emit_body(w, &l.body);
    emit_types(w, &l.ret);
}

fn read_lambda(r: &mut Reader<'_>) -> Result<Lambda, CacheError> {
    Ok(Lambda {
        params: read_params(r)?,
        body: read_body(r)?,
        ret: read_types(r)?,
    })
}

fn emit_body(w: &mut Writer, b: &Body) {
    w.len(b.stms.len());
    for Stm { pat, exp } in &b.stms {
        emit_params(w, pat);
        emit_exp(w, exp);
    }
    emit_atoms(w, &b.result);
}

fn read_body(r: &mut Reader<'_>) -> Result<Body, CacheError> {
    let n = r.len()?;
    let stms = (0..n)
        .map(|_| {
            Ok(Stm {
                pat: read_params(r)?,
                exp: read_exp(r)?,
            })
        })
        .collect::<Result<Vec<_>, CacheError>>()?;
    Ok(Body {
        stms,
        result: read_atoms(r)?,
    })
}

fn emit_exp(w: &mut Writer, e: &Exp) {
    match e {
        Exp::Atom(a) => {
            w.u8(0);
            emit_atom(w, a);
        }
        Exp::UnOp(op, a) => {
            w.u8(1);
            w.u8(un_op_tag(*op));
            emit_atom(w, a);
        }
        Exp::BinOp(op, a, b) => {
            w.u8(2);
            w.u8(bin_op_tag(*op));
            emit_atom(w, a);
            emit_atom(w, b);
        }
        Exp::Select { cond, t, f } => {
            w.u8(3);
            emit_atom(w, cond);
            emit_atom(w, t);
            emit_atom(w, f);
        }
        Exp::Index { arr, idx } => {
            w.u8(4);
            emit_var(w, *arr);
            emit_atoms(w, idx);
        }
        Exp::Update { arr, idx, val } => {
            w.u8(5);
            emit_var(w, *arr);
            emit_atoms(w, idx);
            emit_atom(w, val);
        }
        Exp::Len(v) => {
            w.u8(6);
            emit_var(w, *v);
        }
        Exp::Iota(a) => {
            w.u8(7);
            emit_atom(w, a);
        }
        Exp::Replicate { n, val } => {
            w.u8(8);
            emit_atom(w, n);
            emit_atom(w, val);
        }
        Exp::Reverse(v) => {
            w.u8(9);
            emit_var(w, *v);
        }
        Exp::Copy(v) => {
            w.u8(10);
            emit_var(w, *v);
        }
        Exp::If {
            cond,
            then_br,
            else_br,
        } => {
            w.u8(11);
            emit_atom(w, cond);
            emit_body(w, then_br);
            emit_body(w, else_br);
        }
        Exp::Loop {
            params,
            index,
            count,
            body,
        } => {
            w.u8(12);
            w.len(params.len());
            for (p, init) in params {
                emit_var(w, p.var);
                emit_type(w, &p.ty);
                emit_atom(w, init);
            }
            emit_var(w, *index);
            emit_atom(w, count);
            emit_body(w, body);
        }
        Exp::Map { lam, args } => {
            w.u8(13);
            emit_lambda(w, lam);
            emit_vars(w, args);
        }
        Exp::Reduce { lam, neutral, args } => {
            w.u8(14);
            emit_lambda(w, lam);
            emit_atoms(w, neutral);
            emit_vars(w, args);
        }
        Exp::Scan { lam, neutral, args } => {
            w.u8(15);
            emit_lambda(w, lam);
            emit_atoms(w, neutral);
            emit_vars(w, args);
        }
        Exp::Redomap {
            red_lam,
            map_lam,
            neutral,
            args,
        } => {
            w.u8(16);
            emit_lambda(w, red_lam);
            emit_lambda(w, map_lam);
            emit_atoms(w, neutral);
            emit_vars(w, args);
        }
        Exp::Hist {
            op,
            num_bins,
            inds,
            vals,
        } => {
            w.u8(17);
            w.u8(reduce_op_tag(*op));
            emit_atom(w, num_bins);
            emit_var(w, *inds);
            emit_var(w, *vals);
        }
        Exp::Scatter { dest, inds, vals } => {
            w.u8(18);
            emit_var(w, *dest);
            emit_var(w, *inds);
            emit_var(w, *vals);
        }
        Exp::WithAcc { arrs, lam } => {
            w.u8(19);
            emit_vars(w, arrs);
            emit_lambda(w, lam);
        }
        Exp::UpdAcc { acc, idx, val } => {
            w.u8(20);
            emit_var(w, *acc);
            emit_atoms(w, idx);
            emit_atom(w, val);
        }
    }
}

fn read_exp(r: &mut Reader<'_>) -> Result<Exp, CacheError> {
    Ok(match r.u8()? {
        0 => Exp::Atom(read_atom(r)?),
        1 => Exp::UnOp(read_un_op(r)?, read_atom(r)?),
        2 => Exp::BinOp(read_bin_op(r)?, read_atom(r)?, read_atom(r)?),
        3 => Exp::Select {
            cond: read_atom(r)?,
            t: read_atom(r)?,
            f: read_atom(r)?,
        },
        4 => Exp::Index {
            arr: read_var(r)?,
            idx: read_atoms(r)?,
        },
        5 => Exp::Update {
            arr: read_var(r)?,
            idx: read_atoms(r)?,
            val: read_atom(r)?,
        },
        6 => Exp::Len(read_var(r)?),
        7 => Exp::Iota(read_atom(r)?),
        8 => Exp::Replicate {
            n: read_atom(r)?,
            val: read_atom(r)?,
        },
        9 => Exp::Reverse(read_var(r)?),
        10 => Exp::Copy(read_var(r)?),
        11 => Exp::If {
            cond: read_atom(r)?,
            then_br: read_body(r)?,
            else_br: read_body(r)?,
        },
        12 => {
            let n = r.len()?;
            let params = (0..n)
                .map(|_| {
                    let var = read_var(r)?;
                    let ty = read_type(r)?;
                    let init = read_atom(r)?;
                    Ok((Param { var, ty }, init))
                })
                .collect::<Result<Vec<_>, CacheError>>()?;
            Exp::Loop {
                params,
                index: read_var(r)?,
                count: read_atom(r)?,
                body: read_body(r)?,
            }
        }
        13 => Exp::Map {
            lam: read_lambda(r)?,
            args: read_vars(r)?,
        },
        14 => Exp::Reduce {
            lam: read_lambda(r)?,
            neutral: read_atoms(r)?,
            args: read_vars(r)?,
        },
        15 => Exp::Scan {
            lam: read_lambda(r)?,
            neutral: read_atoms(r)?,
            args: read_vars(r)?,
        },
        16 => Exp::Redomap {
            red_lam: read_lambda(r)?,
            map_lam: read_lambda(r)?,
            neutral: read_atoms(r)?,
            args: read_vars(r)?,
        },
        17 => Exp::Hist {
            op: read_reduce_op(r)?,
            num_bins: read_atom(r)?,
            inds: read_var(r)?,
            vals: read_var(r)?,
        },
        18 => Exp::Scatter {
            dest: read_var(r)?,
            inds: read_var(r)?,
            vals: read_var(r)?,
        },
        19 => Exp::WithAcc {
            arrs: read_vars(r)?,
            lam: read_lambda(r)?,
        },
        20 => Exp::UpdAcc {
            acc: read_var(r)?,
            idx: read_atoms(r)?,
            val: read_atom(r)?,
        },
        tag => return Err(CacheError::BadTag { what: "exp", tag }),
    })
}

pub(crate) fn emit_fun(w: &mut Writer, f: &Fun) {
    w.str(&f.name);
    emit_params(w, &f.params);
    emit_body(w, &f.body);
    emit_types(w, &f.ret);
}

pub(crate) fn read_fun(r: &mut Reader<'_>) -> Result<Fun, CacheError> {
    Ok(Fun {
        name: r.str()?,
        params: read_params(r)?,
        body: read_body(r)?,
        ret: read_types(r)?,
    })
}

// ---------------------------------------------------------------------
// Bytecode (firvm) encoding
// ---------------------------------------------------------------------

fn emit_opnd(w: &mut Writer, o: Opnd) {
    match o {
        Opnd::Reg(r) => {
            w.u8(0);
            w.u32(r);
        }
        Opnd::F64(x) => {
            w.u8(1);
            w.f64(x);
        }
        Opnd::I64(x) => {
            w.u8(2);
            w.i64(x);
        }
        Opnd::Bool(x) => {
            w.u8(3);
            w.bool(x);
        }
    }
}

fn read_opnd(r: &mut Reader<'_>) -> Result<Opnd, CacheError> {
    match r.u8()? {
        0 => Ok(Opnd::Reg(r.u32()?)),
        1 => Ok(Opnd::F64(r.f64()?)),
        2 => Ok(Opnd::I64(r.i64()?)),
        3 => Ok(Opnd::Bool(r.bool()?)),
        tag => Err(CacheError::BadTag {
            what: "operand",
            tag,
        }),
    }
}

fn emit_opnds(w: &mut Writer, os: &[Opnd]) {
    w.len(os.len());
    for o in os {
        emit_opnd(w, *o);
    }
}

fn read_opnds(r: &mut Reader<'_>) -> Result<Vec<Opnd>, CacheError> {
    let n = r.len()?;
    (0..n).map(|_| read_opnd(r)).collect()
}

fn emit_regs(w: &mut Writer, rs: &[Reg]) {
    w.len(rs.len());
    for reg in rs {
        w.u32(*reg);
    }
}

fn read_regs(r: &mut Reader<'_>) -> Result<Box<[Reg]>, CacheError> {
    let n = r.len()?;
    (0..n).map(|_| r.u32()).collect()
}

fn emit_instr(w: &mut Writer, i: &Instr) {
    match i {
        Instr::Mov { dst, src } => {
            w.u8(0);
            w.u32(*dst);
            emit_opnd(w, *src);
        }
        Instr::Take { dst, src } => {
            w.u8(1);
            w.u32(*dst);
            w.u32(*src);
        }
        Instr::Un { op, dst, a } => {
            w.u8(2);
            w.u8(un_op_tag(*op));
            w.u32(*dst);
            emit_opnd(w, *a);
        }
        Instr::Bin { op, dst, a, b } => {
            w.u8(3);
            w.u8(bin_op_tag(*op));
            w.u32(*dst);
            emit_opnd(w, *a);
            emit_opnd(w, *b);
        }
        Instr::Select { dst, cond, t, f } => {
            w.u8(4);
            w.u32(*dst);
            emit_opnd(w, *cond);
            emit_opnd(w, *t);
            emit_opnd(w, *f);
        }
        Instr::Index { dst, arr, idx } => {
            w.u8(5);
            w.u32(*dst);
            w.u32(*arr);
            emit_opnds(w, idx);
        }
        Instr::Update {
            dst,
            arr,
            idx,
            val,
            consume,
        } => {
            w.u8(6);
            w.u32(*dst);
            w.u32(*arr);
            emit_opnds(w, idx);
            emit_opnd(w, *val);
            w.bool(*consume);
        }
        Instr::Len { dst, arr } => {
            w.u8(7);
            w.u32(*dst);
            w.u32(*arr);
        }
        Instr::Iota { dst, n } => {
            w.u8(8);
            w.u32(*dst);
            emit_opnd(w, *n);
        }
        Instr::Replicate { dst, n, val } => {
            w.u8(9);
            w.u32(*dst);
            emit_opnd(w, *n);
            emit_opnd(w, *val);
        }
        Instr::Reverse { dst, arr } => {
            w.u8(10);
            w.u32(*dst);
            w.u32(*arr);
        }
        Instr::Jmp { target } => {
            w.u8(11);
            w.len(*target);
        }
        Instr::JmpIfNot { cond, target } => {
            w.u8(12);
            emit_opnd(w, *cond);
            w.len(*target);
        }
        Instr::Map {
            kernel,
            dsts,
            args,
            captures,
        } => {
            w.u8(13);
            w.len(*kernel);
            emit_regs(w, dsts);
            emit_regs(w, args);
            emit_regs(w, captures);
        }
        Instr::Reduce {
            kernel,
            dsts,
            neutral,
            args,
            captures,
        } => {
            w.u8(14);
            w.len(*kernel);
            emit_regs(w, dsts);
            emit_opnds(w, neutral);
            emit_regs(w, args);
            emit_regs(w, captures);
        }
        Instr::Scan {
            kernel,
            dsts,
            neutral,
            args,
            captures,
        } => {
            w.u8(15);
            w.len(*kernel);
            emit_regs(w, dsts);
            emit_opnds(w, neutral);
            emit_regs(w, args);
            emit_regs(w, captures);
        }
        Instr::Redomap {
            red_kernel,
            map_kernel,
            dsts,
            neutral,
            args,
            red_captures,
            map_captures,
        } => {
            w.u8(16);
            w.len(*red_kernel);
            w.len(*map_kernel);
            emit_regs(w, dsts);
            emit_opnds(w, neutral);
            emit_regs(w, args);
            emit_regs(w, red_captures);
            emit_regs(w, map_captures);
        }
        Instr::Hist {
            op,
            dst,
            num_bins,
            inds,
            vals,
        } => {
            w.u8(17);
            w.u8(reduce_op_tag(*op));
            w.u32(*dst);
            emit_opnd(w, *num_bins);
            w.u32(*inds);
            w.u32(*vals);
        }
        Instr::Scatter {
            dst,
            dest,
            inds,
            vals,
            consume,
        } => {
            w.u8(18);
            w.u32(*dst);
            w.u32(*dest);
            w.u32(*inds);
            w.u32(*vals);
            w.bool(*consume);
        }
        Instr::WithAcc {
            kernel,
            dsts,
            arrs,
            captures,
        } => {
            w.u8(19);
            w.len(*kernel);
            emit_regs(w, dsts);
            emit_regs(w, arrs);
            emit_regs(w, captures);
        }
        Instr::UpdAcc { dst, acc, idx, val } => {
            w.u8(20);
            w.u32(*dst);
            w.u32(*acc);
            emit_opnds(w, idx);
            emit_opnd(w, *val);
        }
    }
}

fn read_instr(r: &mut Reader<'_>) -> Result<Instr, CacheError> {
    Ok(match r.u8()? {
        0 => Instr::Mov {
            dst: r.u32()?,
            src: read_opnd(r)?,
        },
        1 => Instr::Take {
            dst: r.u32()?,
            src: r.u32()?,
        },
        2 => Instr::Un {
            op: read_un_op(r)?,
            dst: r.u32()?,
            a: read_opnd(r)?,
        },
        3 => Instr::Bin {
            op: read_bin_op(r)?,
            dst: r.u32()?,
            a: read_opnd(r)?,
            b: read_opnd(r)?,
        },
        4 => Instr::Select {
            dst: r.u32()?,
            cond: read_opnd(r)?,
            t: read_opnd(r)?,
            f: read_opnd(r)?,
        },
        5 => Instr::Index {
            dst: r.u32()?,
            arr: r.u32()?,
            idx: read_opnds(r)?.into(),
        },
        6 => Instr::Update {
            dst: r.u32()?,
            arr: r.u32()?,
            idx: read_opnds(r)?.into(),
            val: read_opnd(r)?,
            consume: r.bool()?,
        },
        7 => Instr::Len {
            dst: r.u32()?,
            arr: r.u32()?,
        },
        8 => Instr::Iota {
            dst: r.u32()?,
            n: read_opnd(r)?,
        },
        9 => Instr::Replicate {
            dst: r.u32()?,
            n: read_opnd(r)?,
            val: read_opnd(r)?,
        },
        10 => Instr::Reverse {
            dst: r.u32()?,
            arr: r.u32()?,
        },
        11 => Instr::Jmp {
            target: r.u64()? as usize,
        },
        12 => Instr::JmpIfNot {
            cond: read_opnd(r)?,
            target: r.u64()? as usize,
        },
        13 => Instr::Map {
            kernel: r.u64()? as usize,
            dsts: read_regs(r)?,
            args: read_regs(r)?,
            captures: read_regs(r)?,
        },
        14 => Instr::Reduce {
            kernel: r.u64()? as usize,
            dsts: read_regs(r)?,
            neutral: read_opnds(r)?.into(),
            args: read_regs(r)?,
            captures: read_regs(r)?,
        },
        15 => Instr::Scan {
            kernel: r.u64()? as usize,
            dsts: read_regs(r)?,
            neutral: read_opnds(r)?.into(),
            args: read_regs(r)?,
            captures: read_regs(r)?,
        },
        16 => Instr::Redomap {
            red_kernel: r.u64()? as usize,
            map_kernel: r.u64()? as usize,
            dsts: read_regs(r)?,
            neutral: read_opnds(r)?.into(),
            args: read_regs(r)?,
            red_captures: read_regs(r)?,
            map_captures: read_regs(r)?,
        },
        17 => Instr::Hist {
            op: read_reduce_op(r)?,
            dst: r.u32()?,
            num_bins: read_opnd(r)?,
            inds: r.u32()?,
            vals: r.u32()?,
        },
        18 => Instr::Scatter {
            dst: r.u32()?,
            dest: r.u32()?,
            inds: r.u32()?,
            vals: r.u32()?,
            consume: r.bool()?,
        },
        19 => Instr::WithAcc {
            kernel: r.u64()? as usize,
            dsts: read_regs(r)?,
            arrs: read_regs(r)?,
            captures: read_regs(r)?,
        },
        20 => Instr::UpdAcc {
            dst: r.u32()?,
            acc: r.u32()?,
            idx: read_opnds(r)?.into(),
            val: read_opnd(r)?,
        },
        tag => {
            return Err(CacheError::BadTag {
                what: "instruction",
                tag,
            })
        }
    })
}

fn emit_code(w: &mut Writer, c: &CodeObject) {
    w.len(c.instrs.len());
    for i in &c.instrs {
        emit_instr(w, i);
    }
    w.len(c.num_regs);
    emit_opnds(w, &c.ret);
}

fn read_code(r: &mut Reader<'_>) -> Result<CodeObject, CacheError> {
    let n = r.len()?;
    let instrs = (0..n)
        .map(|_| read_instr(r))
        .collect::<Result<Vec<_>, CacheError>>()?;
    Ok(CodeObject {
        instrs,
        num_regs: r.u64()? as usize,
        ret: read_opnds(r)?,
    })
}

fn emit_kernel(w: &mut Writer, k: &Kernel) {
    emit_code(w, &k.code);
    w.len(k.num_params);
    w.len(k.num_captures);
    emit_types(w, &k.ret);
}

fn read_kernel(r: &mut Reader<'_>) -> Result<Kernel, CacheError> {
    Ok(Kernel {
        code: read_code(r)?,
        num_params: r.u64()? as usize,
        num_captures: r.u64()? as usize,
        ret: read_types(r)?,
    })
}

pub(crate) fn emit_program(w: &mut Writer, p: &Program) {
    w.str(&p.name);
    emit_code(w, &p.main);
    w.len(p.kernels.len());
    for k in &p.kernels {
        emit_kernel(w, k);
    }
    w.len(p.num_params);
}

pub(crate) fn read_program(r: &mut Reader<'_>) -> Result<Program, CacheError> {
    let name = r.str()?;
    let main = read_code(r)?;
    let n = r.len()?;
    let kernels = (0..n)
        .map(|_| read_kernel(r))
        .collect::<Result<Vec<_>, CacheError>>()?;
    let num_params = r.u64()? as usize;
    let prog = Program::assemble(name, main, kernels, num_params);
    validate_program(&prog)?;
    Ok(prog)
}

// ---------------------------------------------------------------------
// Structural validation
// ---------------------------------------------------------------------

fn check_opnd(what: &str, o: Opnd, num_regs: usize) -> Result<(), CacheError> {
    match o {
        Opnd::Reg(r) if (r as usize) >= num_regs => Err(malformed(format!(
            "{what}: register {r} out of range (frame has {num_regs})"
        ))),
        _ => Ok(()),
    }
}

fn check_reg(what: &str, r: Reg, num_regs: usize) -> Result<(), CacheError> {
    if (r as usize) >= num_regs {
        return Err(malformed(format!(
            "{what}: register {r} out of range (frame has {num_regs})"
        )));
    }
    Ok(())
}

fn check_kernel_idx(what: &str, k: usize, nkernels: usize) -> Result<(), CacheError> {
    if k >= nkernels {
        return Err(malformed(format!(
            "{what}: kernel index {k} out of range (program has {nkernels})"
        )));
    }
    Ok(())
}

fn check_code(what: &str, code: &CodeObject, nkernels: usize) -> Result<(), CacheError> {
    if code.num_regs > MAX_REGS {
        return Err(malformed(format!(
            "{what}: absurd register count {}",
            code.num_regs
        )));
    }
    let nr = code.num_regs;
    let regs = |rs: &[Reg]| rs.iter().try_for_each(|&r| check_reg(what, r, nr));
    let opnds = |os: &[Opnd]| os.iter().try_for_each(|&o| check_opnd(what, o, nr));
    let target = |t: usize| {
        // Jumping to `instrs.len()` falls off the end (a legal return).
        if t > code.instrs.len() {
            return Err(malformed(format!(
                "{what}: jump target {t} past the {} instructions",
                code.instrs.len()
            )));
        }
        Ok(())
    };
    for i in &code.instrs {
        match i {
            Instr::Mov { dst, src } => {
                check_reg(what, *dst, nr)?;
                check_opnd(what, *src, nr)?;
            }
            Instr::Take { dst, src } => {
                check_reg(what, *dst, nr)?;
                check_reg(what, *src, nr)?;
            }
            Instr::Un { dst, a, .. } => {
                check_reg(what, *dst, nr)?;
                check_opnd(what, *a, nr)?;
            }
            Instr::Bin { dst, a, b, .. } => {
                check_reg(what, *dst, nr)?;
                check_opnd(what, *a, nr)?;
                check_opnd(what, *b, nr)?;
            }
            Instr::Select { dst, cond, t, f } => {
                check_reg(what, *dst, nr)?;
                opnds(&[*cond, *t, *f])?;
            }
            Instr::Index { dst, arr, idx } => {
                check_reg(what, *dst, nr)?;
                check_reg(what, *arr, nr)?;
                opnds(idx)?;
            }
            Instr::Update {
                dst, arr, idx, val, ..
            } => {
                check_reg(what, *dst, nr)?;
                check_reg(what, *arr, nr)?;
                opnds(idx)?;
                check_opnd(what, *val, nr)?;
            }
            Instr::Len { dst, arr } | Instr::Reverse { dst, arr } => {
                check_reg(what, *dst, nr)?;
                check_reg(what, *arr, nr)?;
            }
            Instr::Iota { dst, n } => {
                check_reg(what, *dst, nr)?;
                check_opnd(what, *n, nr)?;
            }
            Instr::Replicate { dst, n, val } => {
                check_reg(what, *dst, nr)?;
                opnds(&[*n, *val])?;
            }
            Instr::Jmp { target: t } => target(*t)?,
            Instr::JmpIfNot { cond, target: t } => {
                check_opnd(what, *cond, nr)?;
                target(*t)?;
            }
            Instr::Map {
                kernel,
                dsts,
                args,
                captures,
            } => {
                check_kernel_idx(what, *kernel, nkernels)?;
                regs(dsts)?;
                regs(args)?;
                regs(captures)?;
            }
            Instr::Reduce {
                kernel,
                dsts,
                neutral,
                args,
                captures,
            }
            | Instr::Scan {
                kernel,
                dsts,
                neutral,
                args,
                captures,
            } => {
                check_kernel_idx(what, *kernel, nkernels)?;
                regs(dsts)?;
                opnds(neutral)?;
                regs(args)?;
                regs(captures)?;
            }
            Instr::Redomap {
                red_kernel,
                map_kernel,
                dsts,
                neutral,
                args,
                red_captures,
                map_captures,
            } => {
                check_kernel_idx(what, *red_kernel, nkernels)?;
                check_kernel_idx(what, *map_kernel, nkernels)?;
                regs(dsts)?;
                opnds(neutral)?;
                regs(args)?;
                regs(red_captures)?;
                regs(map_captures)?;
            }
            Instr::Hist {
                dst,
                num_bins,
                inds,
                vals,
                ..
            } => {
                check_reg(what, *dst, nr)?;
                check_opnd(what, *num_bins, nr)?;
                check_reg(what, *inds, nr)?;
                check_reg(what, *vals, nr)?;
            }
            Instr::Scatter {
                dst,
                dest,
                inds,
                vals,
                ..
            } => {
                regs(&[*dst, *dest, *inds, *vals])?;
            }
            Instr::WithAcc {
                kernel,
                dsts,
                arrs,
                captures,
            } => {
                check_kernel_idx(what, *kernel, nkernels)?;
                regs(dsts)?;
                regs(arrs)?;
                regs(captures)?;
            }
            Instr::UpdAcc { dst, acc, idx, val } => {
                check_reg(what, *dst, nr)?;
                check_reg(what, *acc, nr)?;
                opnds(idx)?;
                check_opnd(what, *val, nr)?;
            }
        }
    }
    opnds(&code.ret)
}

/// Check the structural invariants the VM's dispatch loop relies on:
/// every register operand fits its frame, every kernel index names a
/// kernel, every jump lands inside (or exactly at the end of) its
/// instruction stream, and kernel frames have room for parameters plus
/// captures. A program passing this cannot make the VM index out of
/// bounds, whatever bytes it was decoded from.
pub fn validate_program(p: &Program) -> Result<(), CacheError> {
    if p.main.num_regs < p.num_params {
        return Err(malformed(format!(
            "main frame has {} registers for {} parameters",
            p.main.num_regs, p.num_params
        )));
    }
    check_code("main", &p.main, p.kernels.len())?;
    for (i, k) in p.kernels.iter().enumerate() {
        let what = format!("kernel {i}");
        if k.num_params.saturating_add(k.num_captures) > k.code.num_regs {
            return Err(malformed(format!(
                "{what}: frame has {} registers for {} parameters + {} captures",
                k.code.num_regs, k.num_params, k.num_captures
            )));
        }
        check_code(&what, &k.code, p.kernels.len())?;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Framed public entry points
// ---------------------------------------------------------------------

/// Encode a program as a self-contained framed document (magic, format
/// version, checksum, payload).
pub fn encode_program(p: &Program) -> Vec<u8> {
    let mut w = Writer::default();
    emit_program(&mut w, p);
    w.frame()
}

/// Decode a framed program document. Verifies the magic, format version,
/// declared length, and payload checksum, then structurally validates the
/// decoded program. Any failure is a typed [`CacheError`].
pub fn decode_program(bytes: &[u8]) -> Result<Program, CacheError> {
    let mut r = open_frame(bytes)?;
    let prog = read_program(&mut r)?;
    finish(&r)?;
    Ok(prog)
}

/// Encode a function as a self-contained framed document.
pub fn encode_fun(f: &Fun) -> Vec<u8> {
    let mut w = Writer::default();
    emit_fun(&mut w, f);
    w.frame()
}

/// Decode a framed function document.
pub fn decode_fun(bytes: &[u8]) -> Result<Fun, CacheError> {
    let mut r = open_frame(bytes)?;
    let fun = read_fun(&mut r)?;
    finish(&r)?;
    Ok(fun)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::Builder;

    fn dot() -> Fun {
        let mut b = Builder::new();
        b.build_fun("dot", &[Type::arr_f64(1), Type::arr_f64(1)], |b, ps| {
            let prods = b.map1(Type::arr_f64(1), &[ps[0], ps[1]], |b, es| {
                vec![b.fmul(es[0].into(), es[1].into())]
            });
            vec![b.sum(prods).into()]
        })
    }

    #[test]
    fn programs_round_trip_bitwise() {
        let prog = firvm::compile(&dot());
        let bytes = encode_program(&prog);
        let back = decode_program(&bytes).unwrap();
        assert_eq!(prog, back);
        // Re-encoding the decoded program reproduces the document exactly.
        assert_eq!(bytes, encode_program(&back));
    }

    #[test]
    fn funs_round_trip_and_keep_their_fingerprint() {
        let f = dot();
        let back = decode_fun(&encode_fun(&f)).unwrap();
        assert_eq!(firvm::fingerprint_pair(&f), firvm::fingerprint_pair(&back));
        assert_eq!(f, back);
    }

    #[test]
    fn nan_and_negative_zero_constants_survive_bitwise() {
        let mut b = Builder::new();
        let f = b.build_fun("weird", &[Type::F64], |b, ps| {
            let n = b.fadd(ps[0].into(), Atom::f64(f64::NAN));
            vec![b.fmul(n, Atom::f64(-0.0))]
        });
        let bytes = encode_fun(&f);
        let back = decode_fun(&bytes).unwrap();
        // NaN != NaN, so compare the re-encoded bytes instead.
        assert_eq!(bytes, encode_fun(&back));
    }

    #[test]
    fn bad_magic_version_and_checksum_are_typed_errors() {
        let good = encode_program(&firvm::compile(&dot()));
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert_eq!(decode_program(&bad), Err(CacheError::BadMagic));
        let mut bad = good.clone();
        bad[4] = 0xfe;
        assert!(matches!(
            decode_program(&bad),
            Err(CacheError::UnsupportedVersion { found }) if found != FORMAT_VERSION
        ));
        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 1;
        assert_eq!(decode_program(&bad), Err(CacheError::ChecksumMismatch));
        assert_eq!(decode_program(&[]), Err(CacheError::BadMagic));
        assert!(matches!(
            decode_program(&good[..10]),
            Err(CacheError::Truncated { .. })
        ));
    }

    #[test]
    fn out_of_range_registers_and_kernels_are_rejected() {
        let mut prog = firvm::compile(&dot());
        prog.main.num_regs = 1;
        let doc = encode_program(&prog);
        assert!(matches!(
            decode_program(&doc),
            Err(CacheError::Malformed { .. })
        ));
        let mut prog = firvm::compile(&dot());
        if let Some(Instr::Map { kernel, .. }) = prog
            .main
            .instrs
            .iter_mut()
            .find(|i| matches!(i, Instr::Map { .. }))
        {
            *kernel = 999;
        }
        assert!(matches!(
            decode_program(&encode_program(&prog)),
            Err(CacheError::Malformed { .. })
        ));
    }
}
