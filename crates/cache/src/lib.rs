//! # fir-cache — persistent on-disk compile cache
//!
//! Compiling a function is the expensive part of serving it: typecheck,
//! derivative transforms, the optimization pipeline, and bytecode
//! compilation together dwarf the cost of reading a few kilobytes back
//! from disk. This crate makes compilation results durable across
//! processes:
//!
//! - [`codec`]: a versioned binary codec for [`firvm::Program`] bytecode
//!   and `fir` IR — framed documents with a magic header, an explicit
//!   format version, and a payload checksum. Decoding hostile, truncated,
//!   or corrupt bytes returns a typed [`CacheError`], never a panic, and
//!   every decoded program is structurally validated before the VM sees
//!   it.
//! - [`store`]: a directory of atomically-written entries keyed by
//!   `(structural fingerprint, transform stack, pipeline, backend)`. Any
//!   mismatch — including a format-version bump — falls back to a
//!   recompile that overwrites the stale entry.
//!
//! The engine integration (consulting the store before `prepare`,
//! writing back after, warmup) lives in `fir-api`/`fir-serve`; this crate
//! deliberately depends only on `fir` and `firvm` so it can be reused by
//! any embedder.

mod codec;
mod store;

pub use codec::{
    decode_fun, decode_program, encode_fun, encode_program, fnv1a, validate_program, CacheError,
    FORMAT_VERSION, MAGIC,
};
pub use store::{decode_entry, encode_entry, CachedEntry, PersistentStats, Store, StoreKey};
