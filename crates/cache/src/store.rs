//! The on-disk store: a directory of framed cache entries keyed by
//! compilation identity.
//!
//! An entry's identity is the [`StoreKey`]: the structural fingerprint of
//! the **root** source function, the canonical transform-stack string
//! (`""` for the root, `"vjp,vmap"` for derivatives), the canonical
//! pipeline description, and the backend name. The format version is
//! deliberately *not* part of the file name — a build with a newer codec
//! finds the old file under the same name, fails its version check, and
//! recompiles **over** the stale entry instead of leaking it forever.
//!
//! Writes are atomic: the entry is written to a unique temp file in the
//! cache directory and `rename`d into place, so concurrent servers
//! sharing one cache directory can never observe a torn write — a reader
//! sees either the complete old entry, the complete new one, or (worst
//! case, mid-rename on a non-POSIX filesystem) a decode failure that is
//! handled as a miss.
//!
//! What is stored: the entry's source [`Fun`] (the already-derived IR for
//! transform entries, so loading a gradient skips re-deriving it), the
//! optimized IR (when the pipeline changed it), and the compiled
//! [`Program`]. What is *not* stored: jit tier promotion state — a loaded
//! program always starts cold at run count zero.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use fir::ir::Fun;
use firvm::Program;

use crate::codec::{
    emit_fun, emit_program, finish, fnv1a, open_frame, read_fun, read_program, CacheError, Writer,
};

/// The identity of one cache entry. Two compilations share an entry
/// exactly when every field matches (the format version is checked
/// separately, inside the file).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreKey<'a> {
    /// Structural fingerprint pair of the root source function.
    pub fingerprint: (u64, u64),
    /// Canonical transform-stack string (`""`, `"vjp"`, `"vjp,vmap"`, ...).
    pub transforms: &'a str,
    /// Canonical pipeline description (pass names + iteration bound).
    pub pipeline: &'a str,
    /// Backend name the program was prepared for.
    pub backend: &'a str,
}

impl StoreKey<'_> {
    /// The entry's file name: two salted FNV-64 hashes of the key fields,
    /// 32 hex digits. The key is also echoed *inside* the entry and
    /// verified on load, so a (vanishingly unlikely) file-name collision
    /// degrades to a recompile, never to serving the wrong program.
    fn file_name(&self) -> String {
        let mut w = Writer::default();
        w.u64(self.fingerprint.0);
        w.u64(self.fingerprint.1);
        w.str(self.transforms);
        w.str(self.pipeline);
        w.str(self.backend);
        let payload = w.frame();
        let lo = fnv1a(&payload);
        let mut salted = vec![0x9e];
        salted.extend_from_slice(&payload);
        let hi = fnv1a(&salted);
        format!("{hi:016x}{lo:016x}.firc")
    }
}

/// One decoded cache entry: everything the engine needs to rebuild its
/// in-memory state without typechecking, deriving, optimizing, or
/// compiling.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedEntry {
    /// The (possibly transform-derived) source IR of this entry.
    pub source: Fun,
    /// The optimized IR, or `None` when the pipeline left the source
    /// unchanged (the common case for already-minimal kernels).
    pub optimized: Option<Fun>,
    /// The compiled bytecode.
    pub program: Program,
}

/// Counters for the persistent tier, surfaced through the engine's
/// `CacheStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PersistentStats {
    /// Entries served from disk.
    pub hits: u64,
    /// Lookups that found no entry on disk.
    pub misses: u64,
    /// Entries written to disk.
    pub stores: u64,
    /// Entries found on disk but rejected (stale format version, corrupt
    /// bytes, key mismatch) and deleted.
    pub invalidations: u64,
}

/// A persistent program store rooted at one directory. Cheap to share
/// behind an `Arc`; safe to point several processes at the same
/// directory.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    invalidations: AtomicU64,
}

impl Store {
    /// Open (creating if necessary) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Store> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Store {
            dir,
            seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        })
    }

    /// The directory this store reads and writes.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Look up `key`. A missing file counts as a miss; a present but
    /// unreadable entry (stale format version, corrupt payload, key-echo
    /// mismatch) counts as an invalidation and is deleted so the
    /// recompile that follows can overwrite it cleanly.
    pub fn load(&self, key: &StoreKey<'_>) -> Option<CachedEntry> {
        let path = self.dir.join(key.file_name());
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_entry(&bytes, key) {
            Ok(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            Err(_) => {
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Write `entry` under `key`, atomically (temp file + rename), so a
    /// concurrent reader in another process never sees a torn entry.
    pub fn store(&self, key: &StoreKey<'_>, entry: &CachedEntry) -> io::Result<()> {
        let bytes = encode_entry(key, entry);
        let unique = self.seq.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".tmp-{}-{unique}", std::process::id()));
        fs::write(&tmp, &bytes)?;
        let path = self.dir.join(key.file_name());
        match fs::rename(&tmp, &path) {
            Ok(()) => {
                self.stores.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Delete `key`'s entry (used when a caller discovers a mismatch the
    /// store itself cannot see). Counts as an invalidation if a file was
    /// actually removed.
    pub fn invalidate(&self, key: &StoreKey<'_>) {
        if fs::remove_file(self.dir.join(key.file_name())).is_ok() {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> PersistentStats {
        PersistentStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

/// Encode an entry (with its key echoed into the payload) as one framed
/// document.
pub fn encode_entry(key: &StoreKey<'_>, entry: &CachedEntry) -> Vec<u8> {
    let mut w = Writer::default();
    w.u64(key.fingerprint.0);
    w.u64(key.fingerprint.1);
    w.str(key.transforms);
    w.str(key.pipeline);
    w.str(key.backend);
    let source_fp = firvm::fingerprint_pair(&entry.source);
    w.u64(source_fp.0);
    w.u64(source_fp.1);
    emit_fun(&mut w, &entry.source);
    match &entry.optimized {
        None => w.bool(false),
        Some(f) => {
            w.bool(true);
            emit_fun(&mut w, f);
        }
    }
    emit_program(&mut w, &entry.program);
    w.frame()
}

/// Decode an entry, verifying the frame (magic, version, checksum), the
/// key echo against `key`, and the stored source fingerprint against a
/// recomputed one. The decoded program is structurally validated by the
/// codec, so anything this returns is safe to hand to the VM.
pub fn decode_entry(bytes: &[u8], key: &StoreKey<'_>) -> Result<CachedEntry, CacheError> {
    let mut r = open_frame(bytes)?;
    let echo_fp = (r.u64()?, r.u64()?);
    let echo_transforms = r.str()?;
    let echo_pipeline = r.str()?;
    let echo_backend = r.str()?;
    if echo_fp != key.fingerprint
        || echo_transforms != key.transforms
        || echo_pipeline != key.pipeline
        || echo_backend != key.backend
    {
        return Err(CacheError::Malformed {
            what: "entry key does not match the requested key".to_string(),
        });
    }
    let source_fp = (r.u64()?, r.u64()?);
    let source = read_fun(&mut r)?;
    if firvm::fingerprint_pair(&source) != source_fp {
        return Err(CacheError::Malformed {
            what: "stored source fingerprint does not match its IR".to_string(),
        });
    }
    let optimized = if r.bool()? {
        Some(read_fun(&mut r)?)
    } else {
        None
    };
    let program = read_program(&mut r)?;
    finish(&r)?;
    Ok(CachedEntry {
        source,
        optimized,
        program,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::Builder;
    use fir::types::Type;

    fn square() -> Fun {
        let mut b = Builder::new();
        b.build_fun("square", &[Type::F64], |b, ps| {
            vec![b.fmul(ps[0].into(), ps[0].into())]
        })
    }

    fn tmp_store(tag: &str) -> Store {
        let dir =
            std::env::temp_dir().join(format!("fir-cache-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Store::open(dir).unwrap()
    }

    fn entry_for(f: &Fun) -> CachedEntry {
        CachedEntry {
            source: f.clone(),
            optimized: None,
            program: firvm::compile(f),
        }
    }

    #[test]
    fn store_then_load_round_trips() {
        let store = tmp_store("roundtrip");
        let f = square();
        let key = StoreKey {
            fingerprint: firvm::fingerprint_pair(&f),
            transforms: "",
            pipeline: "none@1",
            backend: "firvm",
        };
        assert!(store.load(&key).is_none(), "empty store must miss");
        store.store(&key, &entry_for(&f)).unwrap();
        let back = store.load(&key).expect("stored entry must load");
        assert_eq!(back.source, f);
        assert_eq!(back.program, firvm::compile(&f));
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.stores, s.invalidations), (1, 1, 1, 0));
    }

    #[test]
    fn key_fields_partition_the_store() {
        let store = tmp_store("partition");
        let f = square();
        let fp = firvm::fingerprint_pair(&f);
        let root = StoreKey {
            fingerprint: fp,
            transforms: "",
            pipeline: "std@8",
            backend: "firvm",
        };
        store.store(&root, &entry_for(&f)).unwrap();
        for other in [
            StoreKey {
                transforms: "vjp",
                ..root
            },
            StoreKey {
                pipeline: "std@4",
                ..root
            },
            StoreKey {
                backend: "interp",
                ..root
            },
            StoreKey {
                fingerprint: (fp.0 ^ 1, fp.1),
                ..root
            },
        ] {
            assert!(
                store.load(&other).is_none(),
                "{other:?} must not alias the root entry"
            );
        }
        assert!(store.load(&root).is_some());
    }

    #[test]
    fn corrupt_and_stale_entries_invalidate_and_are_deleted() {
        let store = tmp_store("corrupt");
        let f = square();
        let key = StoreKey {
            fingerprint: firvm::fingerprint_pair(&f),
            transforms: "",
            pipeline: "none@1",
            backend: "firvm",
        };
        store.store(&key, &entry_for(&f)).unwrap();

        // Flip one payload byte on disk: the load must reject, count an
        // invalidation, and delete the file so the next lookup is a miss.
        let path = fs::read_dir(store.dir())
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "firc"))
            .unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x55;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load(&key).is_none());
        assert!(!path.exists(), "corrupt entry must be deleted");
        assert!(store.load(&key).is_none(), "then it's a plain miss");
        let s = store.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.misses, 1);

        // A future format version under the same name is likewise
        // invalidated (version is not part of the file name by design).
        store.store(&key, &entry_for(&f)).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        bytes[4] = 0xfe;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load(&key).is_none());
        assert_eq!(store.stats().invalidations, 2);
    }

    #[test]
    fn optimized_ir_travels_when_present() {
        let store = tmp_store("optimized");
        let f = square();
        let mut opt = f.clone();
        opt.name = "square_optimized".to_string();
        let key = StoreKey {
            fingerprint: firvm::fingerprint_pair(&f),
            transforms: "",
            pipeline: "std@8",
            backend: "firvm",
        };
        let entry = CachedEntry {
            source: f.clone(),
            optimized: Some(opt.clone()),
            program: firvm::compile(&opt),
        };
        store.store(&key, &entry).unwrap();
        let back = store.load(&key).unwrap();
        assert_eq!(
            back.optimized.as_ref().map(|f| f.name.as_str()),
            Some("square_optimized")
        );
        assert_eq!(back, entry);
    }
}
