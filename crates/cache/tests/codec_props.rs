//! Property tests for the persistent-cache codec: randomized round-trips
//! over generator-produced programs, and hostile-byte fuzzing that must
//! always produce typed errors — never a panic, never a silently-wrong
//! decode.
//!
//! The corruption properties are exact, not probabilistic: the payload
//! checksum is FNV-1a, whose per-byte step `state = (state ^ b) * prime`
//! is a bijection of `state` for fixed `b` (the prime is odd), so *any*
//! single-byte change to the payload changes the checksum, and changes to
//! the header hit a dedicated validation (magic, version, declared
//! length). Every single-byte flip must therefore be rejected.

use fir_cache::{
    decode_fun, decode_program, encode_fun, encode_program, CacheError, FORMAT_VERSION,
};
use fir_proptest::{arbitrary_fun, GenConfig};
use interp::Value;
use proptest::TestRng;

fn cases() -> usize {
    std::env::var("OPT_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(48)
}

/// Bitwise value equality (NaN payloads included — the codec stores
/// `f64::to_bits`, so nothing may canonicalize).
fn assert_bitwise(a: &Value, b: &Value) {
    match (a, b) {
        (Value::F64(x), Value::F64(y)) => assert_eq!(x.to_bits(), y.to_bits()),
        (Value::I64(x), Value::I64(y)) => assert_eq!(x, y),
        (Value::Bool(x), Value::Bool(y)) => assert_eq!(x, y),
        (Value::Arr(x), Value::Arr(y)) => {
            assert_eq!(x.shape, y.shape);
            assert_eq!(x.data.elem(), y.data.elem());
            match x.data.elem() {
                fir::types::ScalarType::F64 => {
                    for (p, q) in x.f64s().iter().zip(y.f64s()) {
                        assert_eq!(p.to_bits(), q.to_bits());
                    }
                }
                fir::types::ScalarType::I64 => assert_eq!(x.i64s(), y.i64s()),
                fir::types::ScalarType::Bool => assert_eq!(x.bools(), y.bools()),
            }
        }
        (a, b) => panic!("shape mismatch: {a:?} vs {b:?}"),
    }
}

/// Round trip: every generated program re-encodes to the exact same
/// bytes after a decode, and the decoded program *executes* bitwise
/// identically to the one compiled in-process. Funs round-trip too,
/// preserving their structural fingerprint (the store's key).
#[test]
fn generated_programs_round_trip_and_execute_identically() {
    let mut rng = TestRng::deterministic();
    let vm = firvm::Vm::sequential();
    for case in 0..cases() {
        let name = format!("prop_codec_{case}");
        let (fun, args) = arbitrary_fun(&name, &mut rng, &GenConfig::default());

        let program = firvm::compile(&fun);
        let bytes = encode_program(&program);
        let decoded = decode_program(&bytes).expect("round trip decodes");
        assert_eq!(
            bytes,
            encode_program(&decoded),
            "case {case}: decode must be the encoder's exact inverse"
        );

        let want = vm.run_program(&program, &args);
        let got = vm.run_program(&decoded, &args);
        assert_eq!(want.len(), got.len(), "case {case}");
        for (w, g) in want.iter().zip(&got) {
            assert_bitwise(w, g);
        }

        let fun_bytes = encode_fun(&fun);
        let fun_back = decode_fun(&fun_bytes).expect("fun round trip");
        assert_eq!(
            firvm::fingerprint_pair(&fun),
            firvm::fingerprint_pair(&fun_back),
            "case {case}: the store keys off this fingerprint"
        );
    }
}

/// Every single-byte flip anywhere in an encoded document is rejected
/// with a typed error (see the module docs for why this is exact).
#[test]
fn every_byte_flip_is_rejected() {
    let mut rng = TestRng::deterministic();
    for case in 0..cases().min(12) {
        let name = format!("prop_flip_{case}");
        let (fun, _) = arbitrary_fun(&name, &mut rng, &GenConfig::default());
        let bytes = encode_program(&firvm::compile(&fun));
        // Exhaustive over positions for small documents, sampled for
        // large ones (keeps the test under a second).
        let positions: Vec<usize> = if bytes.len() <= 512 {
            (0..bytes.len()).collect()
        } else {
            (0..512).map(|_| rng.below(0, bytes.len())).collect()
        };
        for pos in positions {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 1 << rng.below(0, 8);
            let err = decode_program(&corrupt)
                .expect_err(&format!("case {case}: flip at {pos} must be rejected"));
            // Any variant is acceptable; what matters is that it is a
            // typed error, produced without panicking.
            let _ = err.to_string();
        }
    }
}

/// Every proper prefix of an encoded document is rejected: truncation
/// can never yield a program.
#[test]
fn every_truncation_is_rejected() {
    let mut rng = TestRng::deterministic();
    let (fun, _) = arbitrary_fun("prop_trunc", &mut rng, &GenConfig::default());
    let bytes = encode_program(&firvm::compile(&fun));
    for len in 0..bytes.len() {
        let err = decode_program(&bytes[..len])
            .expect_err(&format!("prefix of {len}/{} must be rejected", bytes.len()));
        let expected = match len {
            // Not even a complete magic: indistinguishable from a
            // foreign file, reported as such.
            0..=3 => matches!(err, CacheError::BadMagic),
            _ => matches!(
                err,
                CacheError::Truncated { .. } | CacheError::LengthMismatch { .. }
            ),
        };
        assert!(expected, "prefix of {len}: got {err:?}");
    }
    // And appending trailing garbage is rejected too — a document is
    // exactly one frame.
    let mut padded = bytes.clone();
    padded.push(0);
    assert!(decode_program(&padded).is_err(), "trailing bytes accepted");
}

/// A document from a future format version is refused up front with
/// `UnsupportedVersion` — the store treats that as "recompile and
/// overwrite", never "try to parse anyway".
#[test]
fn future_format_versions_are_refused() {
    let mut rng = TestRng::deterministic();
    let (fun, _) = arbitrary_fun("prop_version", &mut rng, &GenConfig::default());
    let mut bytes = encode_program(&firvm::compile(&fun));
    for bump in [1u32, 7, u32::MAX - FORMAT_VERSION] {
        let v = FORMAT_VERSION + bump;
        bytes[4..8].copy_from_slice(&v.to_le_bytes());
        match decode_program(&bytes) {
            Err(CacheError::UnsupportedVersion { found }) => assert_eq!(found, v),
            other => panic!("version {v}: expected UnsupportedVersion, got {other:?}"),
        }
    }
}

/// Random garbage (not even a frame) never panics the decoder.
#[test]
fn random_garbage_never_panics() {
    let mut rng = TestRng::deterministic();
    for _ in 0..256 {
        let len = rng.below(0, 200);
        let garbage: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        assert!(decode_program(&garbage).is_err());
        assert!(decode_fun(&garbage).is_err());
    }
}
