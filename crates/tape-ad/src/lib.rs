//! `tape-ad` — a classical tape-based reverse-mode AD over the `fir` IR.
//!
//! This is the reproduction's stand-in for Tapenade/ADOL-C in Table 1 of the
//! paper: the program is evaluated *sequentially* while every scalar
//! floating-point operation is recorded on a global tape (value + local
//! partials w.r.t. its operands); the gradient is then obtained by a single
//! reverse sweep over the tape. The defining cost — every intermediate
//! scalar goes through tape memory, with no recomputation and no
//! exploitation of parallel structure — is exactly what the paper contrasts
//! its redundant-execution approach against.

use std::collections::HashMap;

use fir::ir::{Atom, BinOp, Body, Const, Exp, Fun, Lambda, ReduceOp, Stm, UnOp, VarId};
use interp::Value;

/// One recorded scalar operation: up to two parents with their local
/// partial derivatives.
#[derive(Debug, Clone, Copy)]
struct Node {
    parents: [usize; 2],
    weights: [f64; 2],
}

/// The tape: values and dependency records for every scalar ever computed.
#[derive(Debug, Default)]
pub struct Tape {
    vals: Vec<f64>,
    nodes: Vec<Node>,
}

impl Tape {
    fn constant(&mut self, x: f64) -> usize {
        self.push(x, [0, 0], [0.0, 0.0])
    }

    fn push(&mut self, val: f64, parents: [usize; 2], weights: [f64; 2]) -> usize {
        self.vals.push(val);
        self.nodes.push(Node { parents, weights });
        self.vals.len() - 1
    }

    fn unary(&mut self, a: usize, val: f64, da: f64) -> usize {
        self.push(val, [a, a], [da, 0.0])
    }

    fn binary(&mut self, a: usize, b: usize, val: f64, da: f64, db: f64) -> usize {
        self.push(val, [a, b], [da, db])
    }

    /// Number of scalars recorded (the tape length).
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Reverse sweep: the adjoint of every tape position given a seed at
    /// `output`.
    fn reverse(&self, output: usize, seed: f64) -> Vec<f64> {
        let mut adj = vec![0.0; self.vals.len()];
        adj[output] = seed;
        for i in (0..=output).rev() {
            let a = adj[i];
            if a == 0.0 {
                continue;
            }
            let n = self.nodes[i];
            adj[n.parents[0]] += n.weights[0] * a;
            adj[n.parents[1]] += n.weights[1] * a;
        }
        adj
    }
}

/// A runtime value of the tape interpreter: scalars carry tape indices.
#[derive(Debug, Clone)]
enum TVal {
    F64(usize),
    I64(i64),
    Bool(bool),
    /// An `f64` array of tape indices with a shape.
    ArrF64(Vec<usize>, Vec<usize>),
    ArrI64(Vec<i64>, Vec<usize>),
    ArrBool(Vec<bool>, Vec<usize>),
}

impl TVal {
    fn as_f64(&self) -> usize {
        match self {
            TVal::F64(i) => *i,
            other => panic!("expected f64 tape value, got {other:?}"),
        }
    }
    fn as_i64(&self) -> i64 {
        match self {
            TVal::I64(i) => *i,
            other => panic!("expected i64, got {other:?}"),
        }
    }
    fn as_bool(&self) -> bool {
        match self {
            TVal::Bool(b) => *b,
            other => panic!("expected bool, got {other:?}"),
        }
    }
    fn outer_len(&self) -> usize {
        match self {
            TVal::ArrF64(_, s) | TVal::ArrI64(_, s) | TVal::ArrBool(_, s) => s[0],
            other => panic!("expected array, got {other:?}"),
        }
    }
    fn stride(&self) -> usize {
        match self {
            TVal::ArrF64(_, s) | TVal::ArrI64(_, s) | TVal::ArrBool(_, s) => {
                s.iter().skip(1).product()
            }
            other => panic!("expected array, got {other:?}"),
        }
    }
    fn index_outer(&self, i: usize) -> TVal {
        let stride = self.stride();
        match self {
            TVal::ArrF64(d, s) => {
                if s.len() == 1 {
                    TVal::F64(d[i])
                } else {
                    TVal::ArrF64(d[i * stride..(i + 1) * stride].to_vec(), s[1..].to_vec())
                }
            }
            TVal::ArrI64(d, s) => {
                if s.len() == 1 {
                    TVal::I64(d[i])
                } else {
                    TVal::ArrI64(d[i * stride..(i + 1) * stride].to_vec(), s[1..].to_vec())
                }
            }
            TVal::ArrBool(d, s) => {
                if s.len() == 1 {
                    TVal::Bool(d[i])
                } else {
                    TVal::ArrBool(d[i * stride..(i + 1) * stride].to_vec(), s[1..].to_vec())
                }
            }
            other => panic!("expected array, got {other:?}"),
        }
    }
}

struct TapeInterp<'a> {
    tape: &'a mut Tape,
    env: HashMap<VarId, TVal>,
}

impl TapeInterp<'_> {
    fn atom(&mut self, a: &Atom) -> TVal {
        match a {
            Atom::Var(v) => self
                .env
                .get(v)
                .unwrap_or_else(|| panic!("unbound {v}"))
                .clone(),
            Atom::Const(Const::F64(x)) => TVal::F64(self.tape.constant(*x)),
            Atom::Const(Const::I64(x)) => TVal::I64(*x),
            Atom::Const(Const::Bool(x)) => TVal::Bool(*x),
        }
    }

    fn body(&mut self, b: &Body) -> Vec<TVal> {
        for Stm { pat, exp } in &b.stms {
            let vals = self.exp(exp);
            for (p, v) in pat.iter().zip(vals) {
                self.env.insert(p.var, v);
            }
        }
        b.result.iter().map(|a| self.atom(a)).collect()
    }

    fn lambda(&mut self, lam: &Lambda, args: Vec<TVal>) -> Vec<TVal> {
        for (p, a) in lam.params.iter().zip(args) {
            self.env.insert(p.var, a);
        }
        self.body(&lam.body)
    }

    fn index(&mut self, arr: &TVal, idx: &[i64]) -> TVal {
        let mut cur = arr.clone();
        for i in idx {
            cur = cur.index_outer(*i as usize);
        }
        cur
    }

    fn flat_f64(&self, v: &TVal) -> Vec<usize> {
        match v {
            TVal::F64(i) => vec![*i],
            TVal::ArrF64(d, _) => d.clone(),
            other => panic!("expected f64 data, got {other:?}"),
        }
    }

    fn exp(&mut self, e: &Exp) -> Vec<TVal> {
        match e {
            Exp::Atom(a) => vec![self.atom(a)],
            Exp::UnOp(op, a) => {
                let va = self.atom(a);
                vec![self.unop(*op, va)]
            }
            Exp::BinOp(op, a, b) => {
                let va = self.atom(a);
                let vb = self.atom(b);
                vec![self.binop(*op, va, vb)]
            }
            Exp::Select { cond, t, f } => {
                let c = self.atom(cond).as_bool();
                vec![if c { self.atom(t) } else { self.atom(f) }]
            }
            Exp::Index { arr, idx } => {
                let a = self.env[arr].clone();
                let idx: Vec<i64> = idx.iter().map(|i| self.atom(i).as_i64()).collect();
                vec![self.index(&a, &idx)]
            }
            Exp::Update { arr, idx, val } => {
                let a = self.env[arr].clone();
                let idx: Vec<i64> = idx.iter().map(|i| self.atom(i).as_i64()).collect();
                let v = self.atom(val);
                vec![self.update(a, &idx, v)]
            }
            Exp::Len(v) => vec![TVal::I64(self.env[v].outer_len() as i64)],
            Exp::Iota(n) => {
                let n = self.atom(n).as_i64().max(0);
                vec![TVal::ArrI64((0..n).collect(), vec![n as usize])]
            }
            Exp::Replicate { n, val } => {
                let n = self.atom(n).as_i64().max(0) as usize;
                let v = self.atom(val);
                vec![match v {
                    TVal::F64(i) => TVal::ArrF64(vec![i; n], vec![n]),
                    TVal::I64(i) => TVal::ArrI64(vec![i; n], vec![n]),
                    TVal::Bool(b) => TVal::ArrBool(vec![b; n], vec![n]),
                    TVal::ArrF64(d, s) => {
                        let mut shape = vec![n];
                        shape.extend(s);
                        TVal::ArrF64(d.repeat(n), shape)
                    }
                    TVal::ArrI64(d, s) => {
                        let mut shape = vec![n];
                        shape.extend(s);
                        TVal::ArrI64(d.repeat(n), shape)
                    }
                    TVal::ArrBool(d, s) => {
                        let mut shape = vec![n];
                        shape.extend(s);
                        TVal::ArrBool(d.repeat(n), shape)
                    }
                }]
            }
            Exp::Reverse(v) => {
                let a = self.env[v].clone();
                let n = a.outer_len();
                let parts: Vec<TVal> = (0..n).rev().map(|i| a.index_outer(i)).collect();
                vec![self.stack(&parts)]
            }
            Exp::Copy(v) => vec![self.env[v].clone()],
            Exp::If {
                cond,
                then_br,
                else_br,
            } => {
                if self.atom(cond).as_bool() {
                    self.body(then_br)
                } else {
                    self.body(else_br)
                }
            }
            Exp::Loop {
                params,
                index,
                count,
                body,
            } => {
                let n = self.atom(count).as_i64().max(0);
                let mut state: Vec<TVal> = params.iter().map(|(_, i)| self.atom(i)).collect();
                for i in 0..n {
                    for ((p, _), v) in params.iter().zip(state.iter()) {
                        self.env.insert(p.var, v.clone());
                    }
                    self.env.insert(*index, TVal::I64(i));
                    state = self.body(body);
                }
                state
            }
            Exp::Map { lam, args } => {
                let arrs: Vec<TVal> = args.iter().map(|a| self.env[a].clone()).collect();
                let n = arrs[0].outer_len();
                let width = lam.ret.len();
                let mut cols: Vec<Vec<TVal>> = vec![Vec::with_capacity(n); width];
                for i in 0..n {
                    let elems: Vec<TVal> = arrs.iter().map(|a| a.index_outer(i)).collect();
                    let outs = self.lambda(lam, elems);
                    for (c, o) in cols.iter_mut().zip(outs) {
                        c.push(o);
                    }
                }
                cols.iter().map(|c| self.stack(c)).collect()
            }
            Exp::Reduce { lam, neutral, args } => {
                let arrs: Vec<TVal> = args.iter().map(|a| self.env[a].clone()).collect();
                let n = arrs[0].outer_len();
                let mut acc: Vec<TVal> = neutral.iter().map(|a| self.atom(a)).collect();
                for i in 0..n {
                    let mut lam_args = acc;
                    lam_args.extend(arrs.iter().map(|a| a.index_outer(i)));
                    acc = self.lambda(lam, lam_args);
                }
                acc
            }
            Exp::Redomap {
                red_lam,
                map_lam,
                neutral,
                args,
            } => {
                let arrs: Vec<TVal> = args.iter().map(|a| self.env[a].clone()).collect();
                let n = arrs[0].outer_len();
                let mut acc: Vec<TVal> = neutral.iter().map(|a| self.atom(a)).collect();
                for i in 0..n {
                    let vals =
                        self.lambda(map_lam, arrs.iter().map(|a| a.index_outer(i)).collect());
                    let mut lam_args = acc;
                    lam_args.extend(vals);
                    acc = self.lambda(red_lam, lam_args);
                }
                acc
            }
            Exp::Scan { lam, neutral, args } => {
                let arrs: Vec<TVal> = args.iter().map(|a| self.env[a].clone()).collect();
                let n = arrs[0].outer_len();
                let width = neutral.len();
                let mut acc: Vec<TVal> = neutral.iter().map(|a| self.atom(a)).collect();
                let mut cols: Vec<Vec<TVal>> = vec![Vec::with_capacity(n); width];
                for i in 0..n {
                    let mut lam_args = acc;
                    lam_args.extend(arrs.iter().map(|a| a.index_outer(i)));
                    acc = self.lambda(lam, lam_args);
                    for (c, o) in cols.iter_mut().zip(acc.iter()) {
                        c.push(o.clone());
                    }
                }
                cols.iter().map(|c| self.stack(c)).collect()
            }
            Exp::Hist {
                op,
                num_bins,
                inds,
                vals,
            } => {
                assert_eq!(
                    *op,
                    ReduceOp::Add,
                    "tape-ad: only + histograms are supported"
                );
                let m = self.atom(num_bins).as_i64().max(0) as usize;
                let inds = match &self.env[inds] {
                    TVal::ArrI64(d, _) => d.clone(),
                    other => panic!("hist indices must be i64, got {other:?}"),
                };
                let vals = self.flat_f64(&self.env[vals].clone());
                let mut bins: Vec<usize> = (0..m).map(|_| self.tape.constant(0.0)).collect();
                for (k, bin) in inds.iter().enumerate() {
                    if *bin >= 0 && (*bin as usize) < m {
                        let b = *bin as usize;
                        let v = vals[k];
                        let sum = self.tape.vals[bins[b]] + self.tape.vals[v];
                        bins[b] = self.tape.binary(bins[b], v, sum, 1.0, 1.0);
                    }
                }
                vec![TVal::ArrF64(bins, vec![m])]
            }
            Exp::Scatter { dest, inds, vals } => {
                let d = self.env[dest].clone();
                let inds = match &self.env[inds] {
                    TVal::ArrI64(v, _) => v.clone(),
                    other => panic!("scatter indices must be i64, got {other:?}"),
                };
                let v = self.env[vals].clone();
                let mut out = d;
                for (k, j) in inds.iter().enumerate() {
                    if *j >= 0 && (*j as usize) < out.outer_len() {
                        let elem = v.index_outer(k);
                        out = self.update(out, &[*j], elem);
                    }
                }
                vec![out]
            }
            Exp::WithAcc { .. } | Exp::UpdAcc { .. } => {
                panic!("tape-ad does not evaluate accumulator constructs")
            }
        }
    }

    fn stack(&self, parts: &[TVal]) -> TVal {
        assert!(!parts.is_empty(), "stack of zero values");
        match &parts[0] {
            TVal::F64(_) => TVal::ArrF64(
                parts.iter().map(|p| p.as_f64()).collect(),
                vec![parts.len()],
            ),
            TVal::I64(_) => TVal::ArrI64(
                parts.iter().map(|p| p.as_i64()).collect(),
                vec![parts.len()],
            ),
            TVal::Bool(_) => TVal::ArrBool(
                parts.iter().map(|p| p.as_bool()).collect(),
                vec![parts.len()],
            ),
            TVal::ArrF64(_, s) => {
                let mut shape = vec![parts.len()];
                shape.extend(s.clone());
                let mut data = Vec::new();
                for p in parts {
                    match p {
                        TVal::ArrF64(d, _) => data.extend_from_slice(d),
                        other => panic!("ragged stack: {other:?}"),
                    }
                }
                TVal::ArrF64(data, shape)
            }
            TVal::ArrI64(_, s) => {
                let mut shape = vec![parts.len()];
                shape.extend(s.clone());
                let mut data = Vec::new();
                for p in parts {
                    match p {
                        TVal::ArrI64(d, _) => data.extend_from_slice(d),
                        other => panic!("ragged stack: {other:?}"),
                    }
                }
                TVal::ArrI64(data, shape)
            }
            TVal::ArrBool(_, s) => {
                let mut shape = vec![parts.len()];
                shape.extend(s.clone());
                let mut data = Vec::new();
                for p in parts {
                    match p {
                        TVal::ArrBool(d, _) => data.extend_from_slice(d),
                        other => panic!("ragged stack: {other:?}"),
                    }
                }
                TVal::ArrBool(data, shape)
            }
        }
    }

    fn update(&mut self, arr: TVal, idx: &[i64], val: TVal) -> TVal {
        match arr {
            TVal::ArrF64(mut d, s) => {
                let (off, span) = offset(&s, idx);
                match val {
                    TVal::F64(i) => d[off] = i,
                    TVal::ArrF64(vd, _) => d[off..off + span].copy_from_slice(&vd),
                    other => panic!("type mismatch in update: {other:?}"),
                }
                TVal::ArrF64(d, s)
            }
            TVal::ArrI64(mut d, s) => {
                let (off, span) = offset(&s, idx);
                match val {
                    TVal::I64(i) => d[off] = i,
                    TVal::ArrI64(vd, _) => d[off..off + span].copy_from_slice(&vd),
                    other => panic!("type mismatch in update: {other:?}"),
                }
                TVal::ArrI64(d, s)
            }
            other => panic!("update on non-array {other:?}"),
        }
    }

    fn unop(&mut self, op: UnOp, a: TVal) -> TVal {
        match op {
            UnOp::Not => return TVal::Bool(!a.as_bool()),
            UnOp::ToF64 => {
                return match a {
                    TVal::I64(i) => TVal::F64(self.tape.constant(i as f64)),
                    TVal::F64(i) => TVal::F64(i),
                    other => panic!("to_f64 on {other:?}"),
                }
            }
            UnOp::ToI64 => {
                return match a {
                    TVal::F64(i) => TVal::I64(self.tape.vals[i] as i64),
                    TVal::I64(i) => TVal::I64(i),
                    other => panic!("to_i64 on {other:?}"),
                }
            }
            UnOp::Neg => {
                if let TVal::I64(i) = a {
                    return TVal::I64(-i);
                }
            }
            UnOp::Abs => {
                if let TVal::I64(i) = a {
                    return TVal::I64(i.abs());
                }
            }
            _ => {}
        }
        let ia = a.as_f64();
        let x = self.tape.vals[ia];
        let (val, d) = match op {
            UnOp::Neg => (-x, -1.0),
            UnOp::Sin => (x.sin(), x.cos()),
            UnOp::Cos => (x.cos(), -x.sin()),
            UnOp::Exp => (x.exp(), x.exp()),
            UnOp::Log => (x.ln(), 1.0 / x),
            UnOp::Sqrt => (x.sqrt(), 0.5 / x.sqrt()),
            UnOp::Tanh => (x.tanh(), 1.0 - x.tanh() * x.tanh()),
            UnOp::Sigmoid => {
                let s = 1.0 / (1.0 + (-x).exp());
                (s, s * (1.0 - s))
            }
            UnOp::Abs => (x.abs(), if x >= 0.0 { 1.0 } else { -1.0 }),
            UnOp::Recip => (1.0 / x, -1.0 / (x * x)),
            _ => unreachable!(),
        };
        TVal::F64(self.tape.unary(ia, val, d))
    }

    fn binop(&mut self, op: BinOp, a: TVal, b: TVal) -> TVal {
        // Integer and boolean operations do not touch the tape.
        if let (TVal::I64(x), TVal::I64(y)) = (&a, &b) {
            let (x, y) = (*x, *y);
            return match op {
                BinOp::Add => TVal::I64(x + y),
                BinOp::Sub => TVal::I64(x - y),
                BinOp::Mul => TVal::I64(x * y),
                BinOp::Div => TVal::I64(x / y),
                BinOp::Rem => TVal::I64(x % y),
                BinOp::Min => TVal::I64(x.min(y)),
                BinOp::Max => TVal::I64(x.max(y)),
                BinOp::Pow => TVal::I64(x.pow(y.max(0) as u32)),
                BinOp::Eq => TVal::Bool(x == y),
                BinOp::Neq => TVal::Bool(x != y),
                BinOp::Lt => TVal::Bool(x < y),
                BinOp::Le => TVal::Bool(x <= y),
                BinOp::Gt => TVal::Bool(x > y),
                BinOp::Ge => TVal::Bool(x >= y),
                BinOp::And | BinOp::Or => panic!("logical op on ints"),
            };
        }
        if let (TVal::Bool(x), TVal::Bool(y)) = (&a, &b) {
            return match op {
                BinOp::And => TVal::Bool(*x && *y),
                BinOp::Or => TVal::Bool(*x || *y),
                BinOp::Eq => TVal::Bool(x == y),
                BinOp::Neq => TVal::Bool(x != y),
                _ => panic!("arith op on bools"),
            };
        }
        let ia = a.as_f64();
        let ib = b.as_f64();
        let x = self.tape.vals[ia];
        let y = self.tape.vals[ib];
        if op.is_predicate() {
            return TVal::Bool(match op {
                BinOp::Eq => x == y,
                BinOp::Neq => x != y,
                BinOp::Lt => x < y,
                BinOp::Le => x <= y,
                BinOp::Gt => x > y,
                BinOp::Ge => x >= y,
                _ => unreachable!(),
            });
        }
        let (val, da, db) = match op {
            BinOp::Add => (x + y, 1.0, 1.0),
            BinOp::Sub => (x - y, 1.0, -1.0),
            BinOp::Mul => (x * y, y, x),
            BinOp::Div => (x / y, 1.0 / y, -x / (y * y)),
            BinOp::Pow => (x.powf(y), y * x.powf(y - 1.0), x.powf(y) * x.ln()),
            BinOp::Min => {
                if x <= y {
                    (x, 1.0, 0.0)
                } else {
                    (y, 0.0, 1.0)
                }
            }
            BinOp::Max => {
                if x >= y {
                    (x, 1.0, 0.0)
                } else {
                    (y, 0.0, 1.0)
                }
            }
            BinOp::Rem => (x % y, 1.0, 0.0),
            _ => unreachable!(),
        };
        TVal::F64(self.tape.binary(ia, ib, val, da, db))
    }
}

fn offset(shape: &[usize], idx: &[i64]) -> (usize, usize) {
    let mut off = 0usize;
    let mut stride: usize = shape.iter().product();
    for (k, i) in idx.iter().enumerate() {
        stride /= shape[k];
        off += (*i as usize) * stride;
    }
    (off, stride)
}

fn load(tape: &mut Tape, v: &Value) -> TVal {
    match v {
        Value::F64(x) => TVal::F64(tape.constant(*x)),
        Value::I64(x) => TVal::I64(*x),
        Value::Bool(x) => TVal::Bool(*x),
        Value::Arr(a) => match a.elem() {
            fir::types::ScalarType::F64 => {
                let idxs = a.f64s().iter().map(|x| tape.constant(*x)).collect();
                TVal::ArrF64(idxs, a.shape.clone())
            }
            fir::types::ScalarType::I64 => TVal::ArrI64(a.i64s().to_vec(), a.shape.clone()),
            fir::types::ScalarType::Bool => TVal::ArrBool(a.bools().to_vec(), a.shape.clone()),
        },
        Value::Acc(_) => panic!("tape-ad cannot load accumulators"),
    }
}

/// The result of a tape-based gradient computation.
pub struct TapeGradient {
    /// The primal (scalar) value.
    pub value: f64,
    /// The gradient with respect to every differentiable (`f64`) input, in
    /// parameter order, flattened.
    pub gradient: Vec<f64>,
    /// The number of scalars stored on the tape (the memory the approach
    /// fundamentally needs).
    pub tape_len: usize,
}

/// Evaluate a scalar-valued function and its gradient with tape-based
/// reverse AD.
pub fn gradient(fun: &Fun, args: &[Value]) -> TapeGradient {
    assert_eq!(fun.params.len(), args.len(), "argument count mismatch");
    let mut tape = Tape::default();
    // Load inputs, remembering which tape slots are differentiable inputs.
    let mut input_slots: Vec<usize> = Vec::new();
    let mut env = HashMap::new();
    for (p, a) in fun.params.iter().zip(args) {
        let tv = load(&mut tape, a);
        match &tv {
            TVal::F64(i) => input_slots.push(*i),
            TVal::ArrF64(d, _) => input_slots.extend(d.iter().copied()),
            _ => {}
        }
        env.insert(p.var, tv);
    }
    let mut ti = TapeInterp {
        tape: &mut tape,
        env,
    };
    let out = ti.body(&fun.body);
    let out_idx = out[0].as_f64();
    let value = tape.vals[out_idx];
    let adj = tape.reverse(out_idx, 1.0);
    let gradient = input_slots.iter().map(|i| adj[*i]).collect();
    TapeGradient {
        value,
        gradient,
        tape_len: tape.len(),
    }
}

/// Evaluate only the primal value with the same sequential evaluator (used
/// for the objective-time denominator of Table 1, so both numerator and
/// denominator share an execution substrate).
pub fn primal(fun: &Fun, args: &[Value]) -> f64 {
    gradient(fun, args).value
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::Builder;
    use fir::ir::Atom;
    use fir::types::Type;

    #[test]
    fn tape_gradient_of_dot_product() {
        let mut b = Builder::new();
        let f = b.build_fun("dot", &[Type::arr_f64(1), Type::arr_f64(1)], |b, ps| {
            let prods = b.map1(Type::arr_f64(1), &[ps[0], ps[1]], |b, es| {
                vec![b.fmul(es[0].into(), es[1].into())]
            });
            vec![Atom::Var(b.sum(prods))]
        });
        let g = gradient(
            &f,
            &[
                Value::from(vec![1.0, 2.0, 3.0]),
                Value::from(vec![4.0, 5.0, 6.0]),
            ],
        );
        assert_eq!(g.value, 32.0);
        assert_eq!(g.gradient, vec![4.0, 5.0, 6.0, 1.0, 2.0, 3.0]);
        assert!(g.tape_len > 6);
    }

    #[test]
    fn tape_handles_loops_branches_scans() {
        let mut b = Builder::new();
        let f = b.build_fun("mix", &[Type::arr_f64(1), Type::F64, Type::I64], |b, ps| {
            let c = Atom::Var(ps[1]);
            let n = Atom::Var(ps[2]);
            let ys = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                let t = b.fsin(es[0].into());
                vec![b.fmul(t, c)]
            });
            let s = b.scan_add(ys);
            let total = b.sum(s);
            let r = b.loop_(&[(Type::F64, total.into())], n, |b, _i, acc| {
                let cnd = b.gt(acc[0].into(), Atom::f64(10.0));
                let nxt = b.if_(
                    cnd,
                    &[Type::F64],
                    |b| vec![b.fmul(acc[0].into(), Atom::f64(0.5))],
                    |b| vec![b.fmul(acc[0].into(), Atom::f64(1.5))],
                );
                vec![nxt[0].into()]
            });
            vec![r[0].into()]
        });
        let args = [
            Value::from(vec![0.1, 0.5, 0.9, 1.3]),
            Value::F64(0.7),
            Value::I64(3),
        ];
        let g = gradient(&f, &args);
        // Cross-check against the redundant-execution AD.
        let interp = interp::Interp::sequential();
        let (val, grad) = futhark_ad::gradcheck::reverse_gradient(&interp, &f, &args);
        assert!((g.value - val).abs() < 1e-12);
        for (a, b) in g.gradient.iter().zip(&grad) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }
}
