//! Property tests for the wire format: randomized round-trips for every
//! request/response variant, and hostile-input fuzzing that must always
//! produce typed errors — never a panic, never a bogus success.

use fir_net::wire::{
    decode_request, decode_response, decode_value, encode_request, encode_response, encode_value,
    write_frame, CallRequest, FrameReader, Poll, WireRequest, WireResponse,
};
use fir_net::{Transform, WireError};
use fir_trace::json;
use interp::{Array, Value};
use proptest::TestRng;

fn cases() -> usize {
    std::env::var("OPT_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

fn rand_f64(rng: &mut TestRng) -> f64 {
    match rng.below(0, 8) {
        0 => f64::from_bits(rng.next_u64()),
        1 => 0.0,
        2 => -0.0,
        3 => f64::INFINITY,
        4 => f64::NEG_INFINITY,
        5 => f64::NAN,
        6 => (rng.unit_f64() - 0.5) * 1e300,
        _ => rng.unit_f64(),
    }
}

fn rand_shape(rng: &mut TestRng) -> Vec<usize> {
    let rank = rng.below(0, 4);
    (0..rank).map(|_| rng.below(0, 5)).collect()
}

fn rand_value(rng: &mut TestRng) -> Value {
    match rng.below(0, 6) {
        0 => Value::F64(rand_f64(rng)),
        1 => Value::I64(rng.next_u64() as i64),
        2 => Value::Bool(rng.next_u64() & 1 == 0),
        3 => {
            let shape = rand_shape(rng);
            let n = shape.iter().product();
            Value::Arr(Array::from_f64(
                shape,
                (0..n).map(|_| rand_f64(rng)).collect(),
            ))
        }
        4 => {
            let shape = rand_shape(rng);
            let n = shape.iter().product();
            Value::Arr(Array::from_i64(
                shape,
                (0..n).map(|_| rng.next_u64() as i64).collect(),
            ))
        }
        _ => {
            let shape = rand_shape(rng);
            let n = shape.iter().product();
            Value::Arr(Array::from_bool(
                shape,
                (0..n).map(|_| rng.next_u64() & 1 == 0).collect(),
            ))
        }
    }
}

/// Bitwise equality, with every NaN payload canonicalized (the wire
/// format collapses NaNs to the one `"NaN"` sentinel by design).
fn assert_same(a: &Value, b: &Value) {
    match (a, b) {
        (Value::F64(x), Value::F64(y)) => {
            assert!(
                x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()),
                "{x} vs {y}"
            )
        }
        (Value::I64(x), Value::I64(y)) => assert_eq!(x, y),
        (Value::Bool(x), Value::Bool(y)) => assert_eq!(x, y),
        (Value::Arr(x), Value::Arr(y)) => {
            assert_eq!(x.shape, y.shape);
            assert_eq!(x.elem(), y.elem());
            match x.elem() {
                fir::types::ScalarType::F64 => {
                    for (p, q) in x.f64s().iter().zip(y.f64s()) {
                        assert!(
                            p.to_bits() == q.to_bits() || (p.is_nan() && q.is_nan()),
                            "{p} vs {q}"
                        );
                    }
                }
                fir::types::ScalarType::I64 => assert_eq!(x.i64s(), y.i64s()),
                fir::types::ScalarType::Bool => assert_eq!(x.bools(), y.bools()),
            }
        }
        (a, b) => panic!("type changed over the wire: {a:?} vs {b:?}"),
    }
}

#[test]
fn random_values_roundtrip() {
    let mut rng = TestRng::deterministic();
    for _ in 0..cases() * 4 {
        let v = rand_value(&mut rng);
        let enc = encode_value(&v).unwrap();
        let parsed = json::parse(&enc).unwrap_or_else(|e| panic!("invalid JSON {enc:?}: {e}"));
        let got = decode_value(&parsed).unwrap_or_else(|e| panic!("decode {enc:?}: {e}"));
        assert_same(&v, &got);
    }
}

fn rand_string(rng: &mut TestRng) -> String {
    let n = rng.below(0, 12);
    (0..n)
        .map(|_| char::from_u32(rng.next_u64() as u32 % 0xD7FF).unwrap_or('x'))
        .collect()
}

fn rand_call(rng: &mut TestRng) -> CallRequest {
    let nargs = rng.below(0, 4);
    let ntrans = rng.below(0, 3);
    CallRequest {
        fn_key: rand_string(rng),
        transforms: (0..ntrans)
            .map(|_| match rng.below(0, 3) {
                0 => Transform::Vjp,
                1 => Transform::Jvp,
                _ => Transform::Vmap,
            })
            .collect(),
        args: (0..nargs).map(|_| rand_value(rng)).collect(),
        deadline_ms: if rng.next_u64() & 1 == 0 {
            Some(rng.next_u64() % 100_000)
        } else {
            None
        },
        tenant: rand_string(rng),
    }
}

#[test]
fn random_requests_and_responses_roundtrip() {
    let mut rng = TestRng::deterministic();
    for _ in 0..cases() {
        let id = rng.next_u64() >> 12;
        let req = match rng.below(0, 5) {
            0 => WireRequest::Ping,
            1 => WireRequest::Metrics,
            2 => WireRequest::Shutdown,
            3 => WireRequest::Call(rand_call(&mut rng)),
            _ => WireRequest::Grad(rand_call(&mut rng)),
        };
        let enc = encode_request(id, &req).unwrap();
        let (got_id, got) = decode_request(&enc);
        assert_eq!(got_id, id);
        let re = encode_request(id, &got.unwrap_or_else(|e| panic!("{enc}: {e}"))).unwrap();
        assert_eq!(re, enc, "request wire form must be stable");

        let trace = rng.next_u64() >> 12;
        let resp = match rng.below(0, 6) {
            0 => WireResponse::Pong,
            1 => WireResponse::Bye,
            2 => WireResponse::MetricsJson(rand_string(&mut rng)),
            3 => WireResponse::Error(WireError::quota(&rand_string(&mut rng), "over quota")),
            4 => WireResponse::Values((0..rng.below(0, 4)).map(|_| rand_value(&mut rng)).collect()),
            _ => WireResponse::Grad {
                value: (0..rng.below(0, 3)).map(|_| rand_value(&mut rng)).collect(),
                grads: (0..rng.below(0, 3)).map(|_| rand_value(&mut rng)).collect(),
            },
        };
        let enc = encode_response(id, trace, &resp).unwrap();
        let (rid, rtrace, rresp) = decode_response(&enc).unwrap_or_else(|e| panic!("{enc}: {e}"));
        assert_eq!((rid, rtrace), (id, trace));
        assert_eq!(encode_response(id, trace, &rresp).unwrap(), enc);
    }
}

#[test]
fn mutated_payloads_never_panic() {
    let mut rng = TestRng::deterministic();
    for _ in 0..cases() {
        let req = WireRequest::Call(rand_call(&mut rng));
        let mut bytes = encode_request(7, &req).unwrap().into_bytes();
        // Flip a few random bytes; decoding must return Ok or a typed
        // error — any panic fails the test by unwinding.
        for _ in 0..1 + rng.below(0, 4) {
            let i = rng.below(0, bytes.len());
            bytes[i] = rng.next_u64() as u8;
        }
        if let Ok(payload) = String::from_utf8(bytes) {
            let (_id, _result) = decode_request(&payload);
            let _ = decode_response(&payload);
        }
    }
}

#[test]
fn truncated_streams_never_panic_and_never_fabricate_frames() {
    let mut rng = TestRng::deterministic();
    for _ in 0..cases() {
        let mut stream = Vec::new();
        let nframes = rng.below(1, 4);
        let mut payloads = Vec::new();
        for i in 0..nframes {
            let payload = encode_request(i as u64, &WireRequest::Ping).unwrap();
            write_frame(&mut stream, &payload).unwrap();
            payloads.push(payload);
        }
        let cut = rng.below(0, stream.len() + 1);
        let mut reader = FrameReader::new(&stream[..cut]);
        let mut seen = 0usize;
        loop {
            match reader.poll() {
                Ok(Poll::Frame(s)) => {
                    // Any frame that does come out is one we wrote.
                    assert_eq!(s, payloads[seen]);
                    seen += 1;
                }
                Ok(Poll::Eof) => break,
                Ok(Poll::Idle) => unreachable!("slices never block"),
                Err(_) => break, // Truncated mid-frame: typed, fine.
            }
        }
        assert!(seen <= nframes);
    }
}
