//! `fir-net` — the network-facing serving tier: a TCP wire protocol in
//! front of sharded [`fir_serve`] runtimes, with adaptive batching and
//! per-tenant fairness.
//!
//! The layers, bottom to top:
//!
//! * [`wire`] — length-prefixed JSON frames; a value codec that
//!   round-trips every [`interp::Value`] **bitwise** (NaN, `-0.0`, and
//!   full 64-bit integers included); typed errors on hostile input,
//!   never panics. Zero dependencies: frames are parsed with the strict
//!   [`fir_trace::json`] parser.
//! * [`NetServer`] / [`NetServerBuilder`] — an accept loop and
//!   connection-handler pool over N serving shards. Shards are
//!   independent [`fir_serve::Server`]s (own dispatcher, own queues)
//!   sharing one [`fir_api::Engine`], whose lock-free published cache
//!   makes the shared compiled-program read path wait-free.
//! * [`tenant`] — token-bucket quotas plus weighted fair-sharing of
//!   in-flight capacity; sheds are typed `overloaded` errors naming the
//!   throttled tenant.
//! * [`adaptive`] — a feedback controller retuning every lane's
//!   `max_batch_size`/`max_wait` online from windowed live metrics.
//! * [`NetClient`] — a blocking client with optional pipelining.
//!
//! # Example
//!
//! ```
//! use fir::builder::Builder;
//! use fir::types::Type;
//! use fir_api::Engine;
//! use fir_net::{NetClient, NetServerBuilder};
//! use interp::Value;
//!
//! let mut b = Builder::new();
//! let sq = b.build_fun("sqsum", &[Type::arr_f64(1)], |b, ps| {
//!     let s = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
//!         vec![b.fmul(es[0].into(), es[0].into())]
//!     });
//!     vec![b.sum(s).into()]
//! });
//!
//! let server = NetServerBuilder::new(Engine::new())
//!     .register("sqsum", &sq)
//!     .bind("127.0.0.1:0")?;
//!
//! let mut client = NetClient::connect(&server.local_addr().to_string())?;
//! let out = client.call("sqsum", vec![Value::from(vec![1.0, 2.0])])?;
//! assert_eq!(out[0].as_f64(), 5.0);
//! let g = client.grad("sqsum", vec![Value::from(vec![1.0, 2.0])])?;
//! assert_eq!(g.grads[0].as_arr().f64s(), &[2.0, 4.0]);
//! server.shutdown();
//! # Ok::<(), fir_net::NetError>(())
//! ```

pub mod adaptive;
pub mod client;
pub mod error;
pub mod server;
pub mod tenant;
pub mod wire;

pub use adaptive::{decide, AdaptiveConfig, Observation};
pub use client::NetClient;
pub use error::{FrameError, NetError, WireError};
pub use fir_serve::Transform;
pub use server::{NetServer, NetServerBuilder};
pub use tenant::{TenantConfig, TenantGov, TenantPolicy};
pub use wire::{WireRequest, WireResponse, MAX_FRAME};
