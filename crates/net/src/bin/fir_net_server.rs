//! The fir-net server binary: all nine paper workloads behind the TCP
//! wire protocol.
//!
//! Configuration is environment-driven (so CI and the closed-loop bench
//! can shape it without flags):
//!
//! * `FIR_NET_ADDR`     — listen address (default `127.0.0.1:7177`;
//!   use port `0` to let the OS pick — the bound address is printed).
//! * `FIR_NET_SHARDS`   — number of serving shards (default 2).
//! * `FIR_NET_ADAPTIVE` — `0` disables the adaptive batching
//!   controller (default on).
//! * `FIR_NET_ENGINE`   — engine backend name (default `vm-seq`).
//! * `FIR_CACHE_DIR`    — directory for the persistent compile cache
//!   (default off). With it set, the warmup before the listener opens
//!   loads precompiled programs from disk instead of recompiling, and
//!   every fresh compile is written back for the next process.
//!
//! Two tenants are pre-configured: `free` (2 requests/s, burst 2,
//! weight 1 — easy to drive over quota in demos) and `pro` (1000/s,
//! weight 8). Unknown tenants get a moderate default quota.
//!
//! The process prints `LISTENING <addr>` once reachable, serves until a
//! client sends the `shutdown` op, then drains within 5 seconds.

use std::time::{Duration, Instant};

use fir_api::Engine;
use fir_net::{AdaptiveConfig, NetServerBuilder, TenantConfig, TenantPolicy, Transform};
use fir_serve::BatchPolicy;
use workloads::{adbench, gmm, kmeans, lstm, mc};

fn env_or(key: &str, default: &str) -> String {
    std::env::var(key).unwrap_or_else(|_| default.to_string())
}

fn main() {
    let addr = env_or("FIR_NET_ADDR", "127.0.0.1:7177");
    let shards: usize = env_or("FIR_NET_SHARDS", "2").parse().unwrap_or(2);
    let adaptive = env_or("FIR_NET_ADAPTIVE", "1") != "0";
    let engine_name = env_or("FIR_NET_ENGINE", "vm-seq");

    let cache_dir = std::env::var("FIR_CACHE_DIR")
        .ok()
        .filter(|d| !d.is_empty());

    let mut engine_builder = Engine::builder().backend_name(&engine_name);
    if let Some(dir) = &cache_dir {
        engine_builder = engine_builder.persistent_cache(dir);
    }
    let engine = match engine_builder.build() {
        Ok(e) => e,
        Err(e) => {
            eprintln!("could not build engine {engine_name:?}: {e}");
            std::process::exit(2);
        }
    };

    let lstm_data = lstm::LstmData::generate(4, 3, 4, 2, 0);
    let dlstm_data = adbench::DlstmData::generate(8, 4, 4, 0);
    let t0 = Instant::now();
    let mut builder = NetServerBuilder::new(engine)
        .shards(shards)
        .batch_policy(BatchPolicy {
            max_batch_size: 16,
            max_wait: Duration::from_millis(1),
        })
        .queue_capacity(1024)
        .register("gmm", &gmm::objective_ir())
        .register("kmeans-dense", &kmeans::dense_objective_ir())
        .register("kmeans-sparse", &kmeans::sparse_objective_ir())
        .register("lstm", &lstm::objective_ir(lstm_data.h, lstm_data.bs))
        .register("ba", &adbench::ba_objective_ir())
        .register("hand-simple", &adbench::hand_objective_ir(false))
        .register("hand-complicated", &adbench::hand_objective_ir(true))
        .register("d-lstm", &adbench::dlstm_objective_ir(dlstm_data.h))
        .register(
            "xsbench",
            &mc::xsbench_ir(mc::XsData::generate(8, 4, 64, 0).g),
        )
        // Warm the plain and reverse-mode lanes before the listener
        // opens: the first request of each lane hits the compiled-
        // program cache instead of paying derivation + compilation.
        .warmup(&[&[], &[Transform::Vjp]])
        .tenant_policy(
            TenantPolicy {
                default: Some(TenantConfig {
                    rate_per_sec: 100.0,
                    burst: 200.0,
                    weight: 1,
                }),
                tenants: vec![],
                max_in_flight: 4096,
            }
            .tenant(
                "free",
                TenantConfig {
                    rate_per_sec: 2.0,
                    burst: 2.0,
                    weight: 1,
                },
            )
            .tenant(
                "pro",
                TenantConfig {
                    rate_per_sec: 1000.0,
                    burst: 2000.0,
                    weight: 8,
                },
            ),
        );
    if adaptive {
        builder = builder.adaptive(AdaptiveConfig::default());
    }
    let server = match builder.bind(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("could not start server on {addr}: {e}");
            std::process::exit(2);
        }
    };
    println!("LISTENING {}", server.local_addr());
    eprintln!(
        "fir-net: {} shards, adaptive {}, warmed in {:?}",
        shards,
        if adaptive { "on" } else { "off" },
        t0.elapsed()
    );
    if cache_dir.is_some() {
        if let Some(p) = server.metrics().cache.and_then(|c| c.persistent) {
            eprintln!(
                "fir-net: persistent cache: {} hits, {} misses, {} stores",
                p.hits, p.misses, p.stores
            );
        }
    }

    server.run_until_shutdown_requested();
    eprintln!("fir-net: shutdown requested, draining (5s bound)");
    let metrics = server.shutdown_within(Duration::from_secs(5));
    eprintln!(
        "fir-net: served {} requests over {} connections, done",
        metrics.completed(),
        metrics.net.as_ref().map_or(0, |n| n.connections_accepted)
    );
}
