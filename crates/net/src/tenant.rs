//! Per-tenant admission: token-bucket rate limits plus weighted
//! fair-sharing of the server's in-flight capacity.
//!
//! Every `call`/`grad` request names a tenant (empty string: anonymous).
//! Before the request reaches a serving shard, the [`TenantGov`] decides
//! to **admit** or **shed** it:
//!
//! 1. **Token bucket** — tenant `t` accrues `rate_per_sec` tokens,
//!    capped at `burst`; each admitted request spends one. An empty
//!    bucket sheds with `overloaded`, *naming the tenant*, so a noisy
//!    client sees exactly whose quota it exhausted.
//! 2. **Weighted fairness** — when the server bounds total in-flight
//!    requests ([`TenantPolicy::max_in_flight`]), each tenant may hold at
//!    most `max_in_flight * weight / total_weight` slots (at least one).
//!    A heavy tenant therefore cannot starve a light one regardless of
//!    its token budget.
//!
//! Decisions are pure arithmetic on an explicit clock ([`TenantGov::admit_at`])
//! so the unit tests drive time deterministically.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

use fir_serve::TenantCountersSnapshot;

use crate::error::WireError;

/// One tenant's quota configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantConfig {
    /// Steady-state admissions per second.
    pub rate_per_sec: f64,
    /// Bucket capacity: how far above the steady rate a quiet tenant may
    /// burst.
    pub burst: f64,
    /// Fair-share weight against other tenants (≥ 1).
    pub weight: u32,
}

impl TenantConfig {
    /// An effectively unlimited tenant (used for trusted/internal
    /// traffic).
    pub fn unlimited() -> TenantConfig {
        TenantConfig {
            rate_per_sec: f64::INFINITY,
            burst: f64::INFINITY,
            weight: 1,
        }
    }
}

impl Default for TenantConfig {
    fn default() -> TenantConfig {
        TenantConfig {
            rate_per_sec: 100.0,
            burst: 100.0,
            weight: 1,
        }
    }
}

/// The server-wide tenant policy.
#[derive(Debug, Clone, Default)]
pub struct TenantPolicy {
    /// Quota applied to tenants without an explicit entry. `None`
    /// admits unknown tenants without rate limiting (they still count
    /// against fairness).
    pub default: Option<TenantConfig>,
    /// Explicitly configured tenants.
    pub tenants: Vec<(String, TenantConfig)>,
    /// Total in-flight requests across all tenants that the fairness
    /// shares divide. `0` disables the fairness bound.
    pub max_in_flight: usize,
}

impl TenantPolicy {
    /// Register `tenant` with `cfg` (builder style).
    pub fn tenant(mut self, name: &str, cfg: TenantConfig) -> TenantPolicy {
        self.tenants.push((name.to_string(), cfg));
        self
    }
}

struct Bucket {
    cfg: Option<TenantConfig>,
    tokens: f64,
    last: Instant,
    admitted: u64,
    shed: u64,
    in_flight: u64,
}

/// The runtime admission governor (see module docs).
pub struct TenantGov {
    policy: TenantPolicy,
    total_weight: u64,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl TenantGov {
    pub fn new(policy: TenantPolicy, start: Instant) -> TenantGov {
        // The fairness denominator: every configured tenant's weight,
        // plus one share of the default weight for the long tail of
        // unconfigured tenants.
        let mut total_weight: u64 = policy
            .tenants
            .iter()
            .map(|(_, c)| u64::from(c.weight.max(1)))
            .sum();
        total_weight += u64::from(policy.default.map_or(1, |c| c.weight.max(1)));
        let mut buckets = HashMap::new();
        for (name, cfg) in &policy.tenants {
            buckets.insert(
                name.clone(),
                Bucket {
                    cfg: Some(*cfg),
                    tokens: cfg.burst,
                    last: start,
                    admitted: 0,
                    shed: 0,
                    in_flight: 0,
                },
            );
        }
        TenantGov {
            policy,
            total_weight,
            buckets: Mutex::new(buckets),
        }
    }

    fn fair_cap(&self, weight: u32) -> u64 {
        if self.policy.max_in_flight == 0 {
            return u64::MAX;
        }
        let share =
            (self.policy.max_in_flight as u64 * u64::from(weight.max(1))) / self.total_weight;
        share.max(1)
    }

    /// Admit or shed one request from `tenant` at the explicit time
    /// `now`. On admission the tenant holds one in-flight slot until
    /// [`TenantGov::release`].
    pub fn admit_at(&self, tenant: &str, now: Instant) -> Result<(), WireError> {
        let mut buckets = self.buckets.lock().unwrap();
        let default_cfg = self.policy.default;
        let b = buckets.entry(tenant.to_string()).or_insert_with(|| Bucket {
            cfg: default_cfg,
            tokens: default_cfg.map_or(0.0, |c| c.burst),
            last: now,
            admitted: 0,
            shed: 0,
            in_flight: 0,
        });
        // Fairness first: an in-flight hog is shed even with tokens in
        // the bucket.
        let weight = b
            .cfg
            .map_or_else(|| default_cfg.map_or(1, |c| c.weight), |c| c.weight);
        if b.in_flight >= self.fair_cap(weight) {
            b.shed += 1;
            return Err(WireError::quota(
                tenant,
                "exceeded its fair share of in-flight requests",
            ));
        }
        if let Some(cfg) = b.cfg {
            let dt = now.saturating_duration_since(b.last).as_secs_f64();
            b.last = now;
            b.tokens = (b.tokens + cfg.rate_per_sec * dt).min(cfg.burst);
            if b.tokens < 1.0 {
                b.shed += 1;
                return Err(WireError::quota(tenant, "is over its request-rate quota"));
            }
            b.tokens -= 1.0;
        }
        b.admitted += 1;
        b.in_flight += 1;
        Ok(())
    }

    /// Admit or shed one request from `tenant` now.
    pub fn admit(&self, tenant: &str) -> Result<(), WireError> {
        self.admit_at(tenant, Instant::now())
    }

    /// Return the in-flight slot taken by an admitted request.
    pub fn release(&self, tenant: &str) {
        let mut buckets = self.buckets.lock().unwrap();
        if let Some(b) = buckets.get_mut(tenant) {
            b.in_flight = b.in_flight.saturating_sub(1);
        }
    }

    /// Per-tenant counters for the metrics snapshot, sorted by name for
    /// stable output.
    pub fn snapshot(&self) -> Vec<TenantCountersSnapshot> {
        let buckets = self.buckets.lock().unwrap();
        let mut out: Vec<TenantCountersSnapshot> = buckets
            .iter()
            .map(|(name, b)| TenantCountersSnapshot {
                tenant: name.clone(),
                admitted: b.admitted,
                shed: b.shed,
                in_flight: b.in_flight,
            })
            .collect();
        out.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn token_bucket_refills_at_rate_and_caps_at_burst() {
        let t0 = Instant::now();
        let gov = TenantGov::new(
            TenantPolicy::default().tenant(
                "free",
                TenantConfig {
                    rate_per_sec: 2.0,
                    burst: 2.0,
                    weight: 1,
                },
            ),
            t0,
        );
        // Burst of 2 admits immediately, the third sheds.
        assert!(gov.admit_at("free", t0).is_ok());
        assert!(gov.admit_at("free", t0).is_ok());
        let err = gov.admit_at("free", t0).unwrap_err();
        assert_eq!(err.code, "overloaded");
        assert_eq!(err.tenant.as_deref(), Some("free"));
        assert!(err.message.contains("\"free\""), "{}", err.message);
        // Half a second refills one token at 2/s.
        let t1 = t0 + Duration::from_millis(500);
        assert!(gov.admit_at("free", t1).is_ok());
        assert!(gov.admit_at("free", t1).is_err());
        // A long idle period caps at burst, not rate*dt.
        let t2 = t1 + Duration::from_secs(3600);
        assert!(gov.admit_at("free", t2).is_ok());
        assert!(gov.admit_at("free", t2).is_ok());
        assert!(gov.admit_at("free", t2).is_err());
        let snap = gov.snapshot();
        let free = snap.iter().find(|t| t.tenant == "free").unwrap();
        assert_eq!(free.admitted, 5);
        assert_eq!(free.shed, 3);
    }

    #[test]
    fn weighted_fairness_bounds_in_flight_per_tenant() {
        let t0 = Instant::now();
        // 12 slots split 3:1 between "pro" and "free" (plus 1 default
        // share): pro gets 12*3/5 = 7, free gets 12*1/5 = 2.
        let gov = TenantGov::new(
            TenantPolicy {
                default: Some(TenantConfig::unlimited()),
                tenants: vec![
                    (
                        "pro".to_string(),
                        TenantConfig {
                            weight: 3,
                            ..TenantConfig::unlimited()
                        },
                    ),
                    ("free".to_string(), TenantConfig::unlimited()),
                ],
                max_in_flight: 12,
            },
            t0,
        );
        for _ in 0..7 {
            assert!(gov.admit_at("pro", t0).is_ok());
        }
        let err = gov.admit_at("pro", t0).unwrap_err();
        assert_eq!(err.tenant.as_deref(), Some("pro"));
        assert!(err.message.contains("fair share"), "{}", err.message);
        // "free" still has its own slots even with "pro" saturated.
        assert!(gov.admit_at("free", t0).is_ok());
        assert!(gov.admit_at("free", t0).is_ok());
        assert!(gov.admit_at("free", t0).is_err());
        // Releases free slots again.
        gov.release("pro");
        assert!(gov.admit_at("pro", t0).is_ok());
    }

    #[test]
    fn unknown_tenants_use_the_default_quota() {
        let t0 = Instant::now();
        let gov = TenantGov::new(
            TenantPolicy {
                default: Some(TenantConfig {
                    rate_per_sec: 1.0,
                    burst: 1.0,
                    weight: 1,
                }),
                tenants: vec![],
                max_in_flight: 0,
            },
            t0,
        );
        assert!(gov.admit_at("walk-in", t0).is_ok());
        assert!(gov.admit_at("walk-in", t0).is_err());
        // A different unknown tenant has its own bucket.
        assert!(gov.admit_at("other", t0).is_ok());
        // No default at all: admit everything.
        let open = TenantGov::new(TenantPolicy::default(), t0);
        for _ in 0..1000 {
            assert!(open.admit_at("anyone", t0).is_ok());
        }
    }
}
