//! The network server: a TCP accept loop in front of N serving shards.
//!
//! ```text
//!  clients (TCP)          fir-net                      fir-serve shards
//!  ─────────────          ───────                      ────────────────
//!  frame ──► accept loop ──► conn queue ──► handler threads
//!                                             │ decode + tenant admit
//!                                             │ round-robin router
//!                                             ▼
//!                                       shard 0 … shard N-1   ◄── adaptive
//!                                        (own dispatcher,         controller
//!                                         own queues, shared      (retunes lane
//!                                         Engine + compiled-      policies from
//!                                         program cache)          live metrics)
//! ```
//!
//! **Shards** are independent [`fir_serve::Server`]s over *one shared*
//! [`Engine`]: each has its own dispatcher thread and admission queues
//! (so queue locks never cross shards), while compiled programs are
//! found through the engine's lock-free published cache snapshots — a
//! cache hit on any shard is a wait-free read, which is what makes
//! sharing the engine cheaper than duplicating it.
//!
//! **Connections** are handled one thread per active connection (from a
//! bounded handler pool), with *pipelining*: a client may stream many
//! requests without waiting; responses return in request order per
//! connection. Handlers poll the socket with a short read timeout so a
//! stalled peer never wedges shutdown.
//!
//! **Admission** happens before a request touches a shard: the
//! [`TenantGov`] spends a token and takes an in-flight fairness slot, or
//! sheds with a typed `overloaded` error naming the tenant.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use fir::ir::Fun;
use fir_api::{Engine, GradOutput};
use fir_serve::{
    BatchPolicy, MetricsSnapshot, NetStatsSnapshot, Request, Server, ServerBuilder, Ticket,
    Transform,
};
use interp::Value;

use crate::adaptive::{decide, AdaptiveConfig, Observation};
use crate::error::{NetError, WireError};
use crate::tenant::{TenantGov, TenantPolicy};
use crate::wire::{
    decode_request, encode_response, write_frame, FrameReader, Poll, WireRequest, WireResponse,
};

/// How long a connection handler blocks in one socket read before
/// re-checking shutdown and pending pipelined responses.
const POLL_TIMEOUT: Duration = Duration::from_millis(50);

// ---------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------

/// Configures and starts a [`NetServer`].
pub struct NetServerBuilder {
    engine: Engine,
    shards: usize,
    handlers: usize,
    default_policy: Option<BatchPolicy>,
    queue_capacity: Option<usize>,
    fns: Vec<(String, Fun, Option<BatchPolicy>)>,
    warmup: Vec<Vec<Transform>>,
    tenant_policy: TenantPolicy,
    adaptive: Option<AdaptiveConfig>,
}

impl NetServerBuilder {
    /// A builder over `engine`. All shards share it — and its compiled-
    /// program cache.
    pub fn new(engine: Engine) -> NetServerBuilder {
        NetServerBuilder {
            engine,
            shards: 1,
            handlers: 8,
            default_policy: None,
            queue_capacity: None,
            fns: Vec::new(),
            warmup: Vec::new(),
            tenant_policy: TenantPolicy::default(),
            adaptive: None,
        }
    }

    /// Number of serving shards (engine replicas with independent
    /// dispatchers and queues). Clamped to at least 1.
    pub fn shards(mut self, n: usize) -> NetServerBuilder {
        self.shards = n.max(1);
        self
    }

    /// Number of connection-handler threads (bounds concurrently served
    /// connections). Clamped to at least 1.
    pub fn handlers(mut self, n: usize) -> NetServerBuilder {
        self.handlers = n.max(1);
        self
    }

    /// Default batching policy for every shard (see
    /// [`ServerBuilder::batch_policy`]).
    pub fn batch_policy(mut self, policy: BatchPolicy) -> NetServerBuilder {
        self.default_policy = Some(policy);
        self
    }

    /// Per-function admission queue bound on every shard.
    pub fn queue_capacity(mut self, capacity: usize) -> NetServerBuilder {
        self.queue_capacity = Some(capacity);
        self
    }

    /// Register `fun` under `key` on every shard.
    pub fn register(mut self, key: &str, fun: &Fun) -> NetServerBuilder {
        self.fns.push((key.to_string(), fun.clone(), None));
        self
    }

    /// Register with a function-specific batching policy.
    pub fn register_with(mut self, key: &str, fun: &Fun, policy: BatchPolicy) -> NetServerBuilder {
        self.fns.push((key.to_string(), fun.clone(), Some(policy)));
        self
    }

    /// Precompile these transform stacks for every function before the
    /// listener opens (see [`ServerBuilder::warmup`]).
    pub fn warmup(mut self, stacks: &[&[Transform]]) -> NetServerBuilder {
        self.warmup.extend(stacks.iter().map(|s| s.to_vec()));
        self
    }

    /// Per-tenant quotas and fairness weights.
    pub fn tenant_policy(mut self, policy: TenantPolicy) -> NetServerBuilder {
        self.tenant_policy = policy;
        self
    }

    /// Enable the adaptive batching controller.
    pub fn adaptive(mut self, cfg: AdaptiveConfig) -> NetServerBuilder {
        self.adaptive = Some(cfg);
        self
    }

    /// Build the shards (compiling + warming every function), bind
    /// `addr`, and start the accept loop, handler pool, and (if enabled)
    /// the adaptive controller. Returns once the server is reachable.
    pub fn bind(self, addr: &str) -> Result<NetServer, NetError> {
        let mut shards = Vec::with_capacity(self.shards);
        for _ in 0..self.shards {
            let mut b = ServerBuilder::new(self.engine.clone());
            if let Some(p) = self.default_policy {
                b = b.batch_policy(p);
            }
            if let Some(c) = self.queue_capacity {
                b = b.queue_capacity(c);
            }
            for (key, fun, policy) in &self.fns {
                b = match policy {
                    Some(p) => b.register_with(key, fun, *p),
                    None => b.register(key, fun),
                };
            }
            let stacks: Vec<&[Transform]> = self.warmup.iter().map(Vec::as_slice).collect();
            b = b.warmup(&stacks);
            shards.push(b.build()?);
        }
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            shards,
            router: AtomicUsize::new(0),
            gov: TenantGov::new(self.tenant_policy, Instant::now()),
            stats: NetCounters::default(),
            shutdown: AtomicBool::new(false),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            conns: Mutex::new(VecDeque::new()),
            conns_cv: Condvar::new(),
        });

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fir-net-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .map_err(|e| NetError::Config {
                    what: format!("could not spawn accept loop: {e}"),
                })?
        };
        let mut handlers = Vec::with_capacity(self.handlers);
        for i in 0..self.handlers {
            let shared = Arc::clone(&shared);
            handlers.push(
                std::thread::Builder::new()
                    .name(format!("fir-net-conn-{i}"))
                    .spawn(move || handler_loop(&shared))
                    .map_err(|e| NetError::Config {
                        what: format!("could not spawn handler: {e}"),
                    })?,
            );
        }
        let adaptive = match self.adaptive {
            Some(cfg) => {
                let shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("fir-net-adaptive".to_string())
                        .spawn(move || adaptive_loop(&shared, cfg))
                        .map_err(|e| NetError::Config {
                            what: format!("could not spawn adaptive controller: {e}"),
                        })?,
                )
            }
            None => None,
        };
        Ok(NetServer {
            shared,
            local_addr,
            accept: Mutex::new(Some(accept)),
            handlers: Mutex::new(handlers),
            adaptive: Mutex::new(adaptive),
        })
    }
}

// ---------------------------------------------------------------------
// Shared state
// ---------------------------------------------------------------------

#[derive(Default)]
struct NetCounters {
    connections_accepted: AtomicU64,
    connections_active: AtomicU64,
    connections_closed: AtomicU64,
    frames_received: AtomicU64,
    frames_sent: AtomicU64,
    protocol_errors: AtomicU64,
    adaptive_adjustments: AtomicU64,
}

struct Shared {
    shards: Vec<Server>,
    router: AtomicUsize,
    gov: TenantGov,
    stats: NetCounters,
    shutdown: AtomicBool,
    /// Set when a client sends the `shutdown` op; observed by
    /// [`NetServer::run_until_shutdown_requested`].
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
    /// Accepted connections waiting for a handler thread.
    conns: Mutex<VecDeque<TcpStream>>,
    conns_cv: Condvar,
}

impl Shared {
    fn net_snapshot(&self) -> NetStatsSnapshot {
        let s = &self.stats;
        NetStatsSnapshot {
            connections_accepted: s.connections_accepted.load(Ordering::Relaxed),
            connections_active: s.connections_active.load(Ordering::Relaxed),
            connections_closed: s.connections_closed.load(Ordering::Relaxed),
            frames_received: s.frames_received.load(Ordering::Relaxed),
            frames_sent: s.frames_sent.load(Ordering::Relaxed),
            protocol_errors: s.protocol_errors.load(Ordering::Relaxed),
            adaptive_adjustments: s.adaptive_adjustments.load(Ordering::Relaxed),
            tenants: self.gov.snapshot(),
        }
    }

    fn metrics(&self) -> MetricsSnapshot {
        let snaps: Vec<MetricsSnapshot> = self.shards.iter().map(Server::metrics).collect();
        let mut merged = merge_snapshots(snaps);
        merged.net = Some(self.net_snapshot());
        merged
    }
}

/// Merge per-shard snapshots into one server-wide view: counters and
/// histograms add per function, the pool view is shared (one process,
/// one worker pool).
fn merge_snapshots(snaps: Vec<MetricsSnapshot>) -> MetricsSnapshot {
    let mut iter = snaps.into_iter();
    let mut merged = iter.next().expect("at least one shard");
    for s in iter {
        merged.uptime = merged.uptime.max(s.uptime);
        // The arena counters are process-global (each shard snapshotted
        // the same counters at a slightly different instant); keep the
        // freshest view of each monotonic counter rather than summing.
        merged.alloc.heap_allocs = merged.alloc.heap_allocs.max(s.alloc.heap_allocs);
        merged.alloc.arena_hits = merged.alloc.arena_hits.max(s.alloc.arena_hits);
        merged.alloc.pooled_bytes = merged.alloc.pooled_bytes.max(s.alloc.pooled_bytes);
        merged.alloc.reserved_slots = merged.alloc.reserved_slots.max(s.alloc.reserved_slots);
        // Every shard clones the same engine, so the compile-cache
        // counters are one set of atomics snapshotted per shard — any
        // one view suffices; don't sum them.
        if merged.cache.is_none() {
            merged.cache = s.cache;
        }
        for f in s.fns {
            match merged.fns.iter_mut().find(|m| m.fn_key == f.fn_key) {
                None => merged.fns.push(f),
                Some(m) => {
                    m.submitted += f.submitted;
                    m.completed += f.completed;
                    m.failed += f.failed;
                    m.shed += f.shed;
                    m.expired += f.expired;
                    m.batches += f.batches;
                    m.queue_depth += f.queue_depth;
                    m.throughput_rps += f.throughput_rps;
                    m.batch_sizes = m.batch_sizes.merge(&f.batch_sizes);
                    m.latency_us = m.latency_us.merge(&f.latency_us);
                }
            }
        }
    }
    merged
}

// ---------------------------------------------------------------------
// Server handle
// ---------------------------------------------------------------------

/// A running network server. Dropping it shuts it down gracefully.
pub struct NetServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Mutex<Option<std::thread::JoinHandle<()>>>,
    handlers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    adaptive: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl NetServer {
    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A merged live metrics snapshot across all shards, with the
    /// network-layer counters attached.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics()
    }

    /// Block until some client sends the `shutdown` op (or the server is
    /// shut down locally). Does not itself shut down — callers follow up
    /// with [`NetServer::shutdown_within`].
    pub fn run_until_shutdown_requested(&self) {
        let mut requested = self.shared.shutdown_requested.lock().unwrap();
        while !*requested && !self.shared.shutdown.load(Ordering::SeqCst) {
            requested = self.shared.shutdown_cv.wait(requested).unwrap();
        }
    }

    /// Graceful shutdown: stop accepting, flush every connection's
    /// pipeline, drain the shards, and return the final merged metrics.
    pub fn shutdown(&self) -> MetricsSnapshot {
        self.stop_network();
        let snaps: Vec<MetricsSnapshot> = self.shared.shards.iter().map(Server::shutdown).collect();
        let mut merged = merge_snapshots(snaps);
        merged.net = Some(self.shared.net_snapshot());
        merged
    }

    /// Bounded shutdown: like [`NetServer::shutdown`], but queued work
    /// that cannot drain by the deadline is shed (see
    /// [`Server::shutdown_within`]).
    pub fn shutdown_within(&self, timeout: Duration) -> MetricsSnapshot {
        let deadline = Instant::now() + timeout;
        self.stop_network();
        let snaps: Vec<MetricsSnapshot> = self
            .shared
            .shards
            .iter()
            .map(|s| s.shutdown_within(deadline.saturating_duration_since(Instant::now())))
            .collect();
        let mut merged = merge_snapshots(snaps);
        merged.net = Some(self.shared.net_snapshot());
        merged
    }

    /// Stop the accept loop, handler pool, and adaptive controller.
    /// Idempotent; shard shutdown is the caller's next step.
    fn stop_network(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake anyone parked in run_until_shutdown_requested.
        self.shared.shutdown_cv.notify_all();
        // The accept loop blocks in accept(); poke it with a throwaway
        // connection so it observes the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept.lock().unwrap().take() {
            let _ = h.join();
        }
        self.shared.conns_cv.notify_all();
        for h in self.handlers.lock().unwrap().drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.adaptive.lock().unwrap().take() {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if !self.shared.shutdown.load(Ordering::SeqCst) {
            self.shutdown();
        }
    }
}

// ---------------------------------------------------------------------
// Accept loop and handler pool
// ---------------------------------------------------------------------

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wake-up poke (or a late client) — drop it and leave.
            return;
        }
        shared
            .stats
            .connections_accepted
            .fetch_add(1, Ordering::Relaxed);
        let mut q = shared.conns.lock().unwrap();
        q.push_back(stream);
        drop(q);
        shared.conns_cv.notify_one();
    }
}

fn handler_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut q = shared.conns.lock().unwrap();
            loop {
                if let Some(s) = q.pop_front() {
                    break s;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let (guard, _) = shared
                    .conns_cv
                    .wait_timeout(q, Duration::from_millis(100))
                    .unwrap();
                q = guard;
            }
        };
        shared
            .stats
            .connections_active
            .fetch_add(1, Ordering::Relaxed);
        let trace_id = fir_trace::next_id();
        fir_trace::async_begin("net", "connection", trace_id);
        let _ = handle_conn(shared, stream);
        fir_trace::async_end("net", "connection", trace_id, 0);
        shared
            .stats
            .connections_active
            .fetch_sub(1, Ordering::Relaxed);
        shared
            .stats
            .connections_closed
            .fetch_add(1, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------

/// One pipelined request awaiting its in-order response.
enum Outstanding {
    /// Already resolved (ops, sheds, malformed requests).
    Ready(u64, u64, WireResponse),
    /// An in-flight `call` on a shard.
    Call(u64, u64, String, Ticket<Vec<Value>>),
    /// An in-flight `grad` on a shard.
    Grad(u64, u64, String, Ticket<GradOutput>),
}

impl Outstanding {
    fn is_ready(&self) -> bool {
        match self {
            Outstanding::Ready(..) => true,
            Outstanding::Call(_, _, _, t) => t.is_ready(),
            Outstanding::Grad(_, _, _, t) => t.is_ready(),
        }
    }

    /// Resolve into a response, blocking if needed. Server shutdown
    /// fulfills every ticket, so the wait is bounded by drain time.
    fn resolve(self, shared: &Shared) -> (u64, u64, WireResponse) {
        match self {
            Outstanding::Ready(id, trace, resp) => (id, trace, resp),
            Outstanding::Call(id, trace, tenant, t) => {
                let resp = match t.wait() {
                    Ok(values) => WireResponse::Values(values),
                    Err(e) => WireResponse::Error(WireError::from_serve(&e)),
                };
                shared.gov.release(&tenant);
                (id, trace, resp)
            }
            Outstanding::Grad(id, trace, tenant, t) => {
                let resp = match t.wait() {
                    Ok(g) => WireResponse::Grad {
                        value: g.value,
                        grads: g.grads,
                    },
                    Err(e) => WireResponse::Error(WireError::from_serve(&e)),
                };
                shared.gov.release(&tenant);
                (id, trace, resp)
            }
        }
    }

    /// Wait up to `timeout` for readiness (true if ready).
    fn wait_for(&self, timeout: Duration) -> bool {
        match self {
            Outstanding::Ready(..) => true,
            Outstanding::Call(_, _, _, t) => t.wait_for(timeout),
            Outstanding::Grad(_, _, _, t) => t.wait_for(timeout),
        }
    }

    fn abandon(self, shared: &Shared) {
        match self {
            Outstanding::Ready(..) => {}
            Outstanding::Call(_, _, tenant, _) => shared.gov.release(&tenant),
            Outstanding::Grad(_, _, tenant, _) => shared.gov.release(&tenant),
        }
    }
}

fn send(shared: &Shared, stream: &mut TcpStream, id: u64, trace: u64, resp: &WireResponse) -> bool {
    let payload = match encode_response(id, trace, resp) {
        Ok(p) => p,
        Err(_) => {
            // Unencodable response (should not happen): degrade to a
            // typed internal error rather than desyncing the stream.
            let e = WireResponse::Error(WireError {
                code: "internal".to_string(),
                message: "response could not be encoded".to_string(),
                tenant: None,
            });
            encode_response(id, trace, &e).expect("error responses always encode")
        }
    };
    if write_frame(stream, &payload).is_err() {
        return false;
    }
    shared.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
    true
}

fn handle_conn(shared: &Shared, stream: TcpStream) -> Result<(), NetError> {
    stream.set_read_timeout(Some(POLL_TIMEOUT))?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    // O_NONBLOCK is per-socket (shared by the dups): toggled through
    // `writer` while `reader` owns the stream for reads. With the
    // pipeline empty the handler parks in a blocking timed read; with
    // responses pending it drains whatever is already buffered without
    // blocking, then waits on the *ticket* (a condvar — wakes in
    // microseconds) instead of the socket. Waiting on the socket there
    // would add read-timeout granularity (jiffies — milliseconds) to
    // every response.
    let mut nonblocking = false;
    let mut reader = FrameReader::new(stream);
    let mut outstanding: VecDeque<Outstanding> = VecDeque::new();
    let mut open = true;

    let fail = |shared: &Shared, outstanding: &mut VecDeque<Outstanding>| {
        for o in outstanding.drain(..) {
            o.abandon(shared);
        }
    };

    while open || !outstanding.is_empty() {
        // Flush every response that is ready, in request order. Writes
        // must not see O_NONBLOCK (a full send buffer would error
        // instead of blocking).
        if outstanding.front().is_some_and(Outstanding::is_ready) && nonblocking {
            writer.set_nonblocking(false)?;
            nonblocking = false;
        }
        while outstanding.front().is_some_and(Outstanding::is_ready) {
            let (id, trace, resp) = outstanding.pop_front().unwrap().resolve(shared);
            fir_trace::async_end("net", "request", trace, id);
            if !send(shared, &mut writer, id, trace, &resp) {
                fail(shared, &mut outstanding);
                return Ok(());
            }
        }
        if !open || shared.shutdown.load(Ordering::SeqCst) {
            // Not reading anymore (peer EOF or server shutdown): block
            // on the pipeline head until everything has flushed.
            match outstanding.pop_front() {
                None => break,
                Some(o) => {
                    if nonblocking {
                        writer.set_nonblocking(false)?;
                        nonblocking = false;
                    }
                    let (id, trace, resp) = o.resolve(shared);
                    fir_trace::async_end("net", "request", trace, id);
                    if !send(shared, &mut writer, id, trace, &resp) {
                        fail(shared, &mut outstanding);
                        return Ok(());
                    }
                    continue;
                }
            }
        }
        // Read: blocking (with timeout) when idle, nonblocking drain
        // when responses are pending.
        let want_nonblocking = !outstanding.is_empty();
        if want_nonblocking != nonblocking {
            writer.set_nonblocking(want_nonblocking)?;
            nonblocking = want_nonblocking;
        }
        match reader.poll() {
            Ok(Poll::Frame(payload)) => {
                shared.stats.frames_received.fetch_add(1, Ordering::Relaxed);
                outstanding.push_back(dispatch(shared, &payload));
            }
            Ok(Poll::Idle) => {
                // Nothing buffered. If a response is pending, park on
                // the pipeline head's ticket — bounded so shutdown and
                // new socket data are noticed.
                if let Some(front) = outstanding.front() {
                    front.wait_for(Duration::from_millis(5));
                }
            }
            Ok(Poll::Eof) => open = false,
            Err(e) => {
                // Framing is broken: report once (the stream cannot be
                // re-synchronized) and close.
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let err = WireResponse::Error(WireError::bad_frame(&e.to_string()));
                if nonblocking {
                    let _ = writer.set_nonblocking(false);
                    nonblocking = false;
                }
                let _ = send(shared, &mut writer, 0, 0, &err);
                open = false;
            }
        }
    }
    Ok(())
}

/// Decode one request payload and start it: ops answer immediately,
/// `call`/`grad` pass tenant admission and land on a shard.
fn dispatch(shared: &Shared, payload: &str) -> Outstanding {
    let (id, req) = decode_request(payload);
    let trace = fir_trace::next_id();
    fir_trace::async_begin("net", "request", trace);
    let req = match req {
        Ok(r) => r,
        Err(e) => {
            shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return Outstanding::Ready(
                id,
                trace,
                WireResponse::Error(WireError::bad_request(&e.to_string())),
            );
        }
    };
    match req {
        WireRequest::Ping => Outstanding::Ready(id, trace, WireResponse::Pong),
        WireRequest::Metrics => Outstanding::Ready(
            id,
            trace,
            WireResponse::MetricsJson(shared.metrics().to_json()),
        ),
        WireRequest::Shutdown => {
            let mut requested = shared.shutdown_requested.lock().unwrap();
            *requested = true;
            shared.shutdown_cv.notify_all();
            Outstanding::Ready(id, trace, WireResponse::Bye)
        }
        WireRequest::Call(c) => {
            if let Err(e) = shared.gov.admit(&c.tenant) {
                return Outstanding::Ready(id, trace, WireResponse::Error(e));
            }
            let tenant = c.tenant.clone();
            let shard = route(shared);
            match shard.submit(to_request(c)) {
                Ok(ticket) => Outstanding::Call(id, trace, tenant, ticket),
                Err(e) => {
                    shared.gov.release(&tenant);
                    Outstanding::Ready(id, trace, WireResponse::Error(WireError::from_serve(&e)))
                }
            }
        }
        WireRequest::Grad(c) => {
            if let Err(e) = shared.gov.admit(&c.tenant) {
                return Outstanding::Ready(id, trace, WireResponse::Error(e));
            }
            let tenant = c.tenant.clone();
            let shard = route(shared);
            match shard.submit_grad(to_request(c)) {
                Ok(ticket) => Outstanding::Grad(id, trace, tenant, ticket),
                Err(e) => {
                    shared.gov.release(&tenant);
                    Outstanding::Ready(id, trace, WireResponse::Error(WireError::from_serve(&e)))
                }
            }
        }
    }
}

fn route(shared: &Shared) -> &Server {
    let i = shared.router.fetch_add(1, Ordering::Relaxed);
    &shared.shards[i % shared.shards.len()]
}

fn to_request(c: crate::wire::CallRequest) -> Request {
    let mut req = Request::new(c.fn_key, c.args).with_transforms(c.transforms);
    if let Some(ms) = c.deadline_ms {
        req = req.with_deadline(Duration::from_millis(ms));
    }
    req
}

// ---------------------------------------------------------------------
// Adaptive controller
// ---------------------------------------------------------------------

fn adaptive_loop(shared: &Shared, cfg: AdaptiveConfig) {
    // Last-seen cumulative metrics per function, for windowing.
    let mut prev: HashMap<String, (u64, fir_serve::HistogramSnapshot)> = HashMap::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(cfg.interval);
        let merged = merge_snapshots(shared.shards.iter().map(Server::metrics).collect());
        for f in &merged.fns {
            let window = match prev.get(&f.fn_key) {
                Some((_, earlier)) => f.latency_us.since(earlier),
                None => f.latency_us.clone(),
            };
            let prev_completed = prev.get(&f.fn_key).map_or(0, |(c, _)| *c);
            let obs = Observation {
                completed: f.completed.saturating_sub(prev_completed),
                p99_us: window.quantile(0.99),
                queue_depth: f.queue_depth,
            };
            prev.insert(f.fn_key.clone(), (f.completed, f.latency_us.clone()));

            let Ok(cur) = shared.shards[0].policy(&f.fn_key) else {
                continue;
            };
            let next = decide(cur, &obs, &cfg);
            if next == cur {
                continue;
            }
            shared
                .stats
                .adaptive_adjustments
                .fetch_add(1, Ordering::Relaxed);
            fir_trace::counter("net", "adaptive_batch", next.max_batch_size as u64);
            fir_trace::counter(
                "net",
                "adaptive_wait_us",
                u64::try_from(next.max_wait.as_micros()).unwrap_or(u64::MAX),
            );
            for shard in &shared.shards {
                let _ = shard.set_policy(&f.fn_key, next);
                // Lanes that already materialized their own slot track
                // the retuned policy explicitly.
                if let Ok(lanes) = shard.lanes(&f.fn_key) {
                    for (kind, stack) in lanes {
                        let _ = shard.set_lane_policy(&f.fn_key, kind, &stack, next);
                    }
                }
            }
        }
    }
}
