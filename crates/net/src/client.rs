//! A blocking client for the fir-net wire protocol.
//!
//! [`NetClient`] supports both a simple call-and-wait style
//! ([`NetClient::call`], [`NetClient::grad`]) and explicit pipelining
//! ([`NetClient::send_call`] … [`NetClient::recv`]): requests may be
//! streamed ahead and responses arrive in request order, each tagged
//! with the id the send returned.

use std::net::TcpStream;
use std::time::Duration;

use fir_api::GradOutput;
use fir_serve::Transform;
use interp::Value;

use crate::error::NetError;
use crate::wire::{
    decode_response, encode_request, write_frame, CallRequest, FrameReader, Poll, WireRequest,
    WireResponse,
};

/// A connection to a [`crate::NetServer`].
pub struct NetClient {
    writer: TcpStream,
    reader: FrameReader<TcpStream>,
    next_id: u64,
    tenant: String,
}

impl NetClient {
    /// Connect to `addr` as the anonymous tenant.
    pub fn connect(addr: &str) -> Result<NetClient, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(NetClient {
            writer,
            reader: FrameReader::new(stream),
            next_id: 0,
            tenant: String::new(),
        })
    }

    /// Submit subsequent requests as `tenant`.
    pub fn with_tenant(mut self, tenant: &str) -> NetClient {
        self.tenant = tenant.to_string();
        self
    }

    fn send(&mut self, req: &WireRequest) -> Result<u64, NetError> {
        self.next_id += 1;
        let id = self.next_id;
        let payload = encode_request(id, req)?;
        write_frame(&mut self.writer, &payload)?;
        Ok(id)
    }

    fn call_request(
        &self,
        fn_key: &str,
        transforms: &[Transform],
        args: Vec<Value>,
        deadline: Option<Duration>,
    ) -> CallRequest {
        CallRequest {
            fn_key: fn_key.to_string(),
            transforms: transforms.to_vec(),
            args,
            deadline_ms: deadline.map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX)),
            tenant: self.tenant.clone(),
        }
    }

    /// Pipeline a `call`; returns the request id to match in
    /// [`NetClient::recv`].
    pub fn send_call(
        &mut self,
        fn_key: &str,
        transforms: &[Transform],
        args: Vec<Value>,
        deadline: Option<Duration>,
    ) -> Result<u64, NetError> {
        let req = WireRequest::Call(self.call_request(fn_key, transforms, args, deadline));
        self.send(&req)
    }

    /// Pipeline a `grad`; returns the request id.
    pub fn send_grad(
        &mut self,
        fn_key: &str,
        transforms: &[Transform],
        args: Vec<Value>,
        deadline: Option<Duration>,
    ) -> Result<u64, NetError> {
        let req = WireRequest::Grad(self.call_request(fn_key, transforms, args, deadline));
        self.send(&req)
    }

    /// Block for the next in-order response: `(request id, response)`.
    /// Remote errors are returned as [`WireResponse::Error`] — only
    /// transport/protocol failures are `Err`.
    pub fn recv(&mut self) -> Result<(u64, WireResponse), NetError> {
        loop {
            match self.reader.poll()? {
                Poll::Frame(payload) => {
                    let (id, _trace, resp) = decode_response(&payload)?;
                    return Ok((id, resp));
                }
                Poll::Idle => continue,
                Poll::Eof => return Err(NetError::Io("server closed the connection".to_string())),
            }
        }
    }

    fn expect(&mut self, id: u64) -> Result<WireResponse, NetError> {
        let (got, resp) = self.recv()?;
        if got != id {
            return Err(NetError::Protocol {
                what: format!("response id {got} does not match request id {id}"),
            });
        }
        if let WireResponse::Error(e) = resp {
            return Err(NetError::Remote(e));
        }
        Ok(resp)
    }

    /// Execute `fn_key(args)` and wait for the results.
    pub fn call(&mut self, fn_key: &str, args: Vec<Value>) -> Result<Vec<Value>, NetError> {
        self.call_t(fn_key, &[], args)
    }

    /// Execute the transformed function and wait for the results.
    pub fn call_t(
        &mut self,
        fn_key: &str,
        transforms: &[Transform],
        args: Vec<Value>,
    ) -> Result<Vec<Value>, NetError> {
        let id = self.send_call(fn_key, transforms, args, None)?;
        match self.expect(id)? {
            WireResponse::Values(vs) => Ok(vs),
            other => Err(unexpected("values", &other)),
        }
    }

    /// Evaluate the reverse-mode gradient and wait for it.
    pub fn grad(&mut self, fn_key: &str, args: Vec<Value>) -> Result<GradOutput, NetError> {
        self.grad_t(fn_key, &[], args)
    }

    /// Gradient of the transformed function.
    pub fn grad_t(
        &mut self,
        fn_key: &str,
        transforms: &[Transform],
        args: Vec<Value>,
    ) -> Result<GradOutput, NetError> {
        let id = self.send_grad(fn_key, transforms, args, None)?;
        match self.expect(id)? {
            WireResponse::Grad { value, grads } => Ok(GradOutput { value, grads }),
            other => Err(unexpected("grad", &other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), NetError> {
        let id = self.send(&WireRequest::Ping)?;
        match self.expect(id)? {
            WireResponse::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Fetch the server's merged metrics snapshot as JSON.
    pub fn metrics_json(&mut self) -> Result<String, NetError> {
        let id = self.send(&WireRequest::Metrics)?;
        match self.expect(id)? {
            WireResponse::MetricsJson(m) => Ok(m),
            other => Err(unexpected("metrics", &other)),
        }
    }

    /// Ask the server process to shut down; resolves once acknowledged.
    pub fn shutdown_server(&mut self) -> Result<(), NetError> {
        let id = self.send(&WireRequest::Shutdown)?;
        match self.expect(id)? {
            WireResponse::Bye => Ok(()),
            other => Err(unexpected("bye", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &WireResponse) -> NetError {
    NetError::Protocol {
        what: format!("expected a {wanted} response, got {got:?}"),
    }
}
