//! The wire protocol: length-prefixed JSON frames and the value codec.
//!
//! Every message is one *frame*: a 4-byte big-endian payload length
//! followed by that many bytes of UTF-8 JSON. Requests and responses are
//! JSON objects; [`interp::Value`]s cross the wire in a typed envelope
//! that round-trips **bitwise**:
//!
//! | value        | wire form                                                 |
//! |--------------|-----------------------------------------------------------|
//! | `F64(x)`     | `{"t":"f64","v":1.5}` (non-finite as `"NaN"`/`"Infinity"`/`"-Infinity"`) |
//! | `I64(n)`     | `{"t":"i64","v":"-42"}` (string: full 64-bit precision)   |
//! | `Bool(b)`    | `{"t":"bool","v":true}`                                   |
//! | `Arr`        | `{"t":"arr","elem":"f64","shape":[2,3],"data":[...]}`     |
//!
//! Finite `f64`s are emitted with Rust's shortest round-trip `Display`
//! and re-read by the strict [`fir_trace::json`] parser's correctly
//! rounded `str::parse::<f64>` — so `encode(decode(x))` is bit-identical
//! for every finite value (including `-0.0`). `i64`s ride as strings
//! because JSON numbers only carry 53 bits of integer precision.
//!
//! Decoding never panics on hostile input: every malformed shape is a
//! typed [`NetError::Protocol`] / [`FrameError`].

use std::io::{Read, Write};

use fir::types::ScalarType;
use fir_serve::Transform;
use interp::{Array, Value};

use crate::error::{FrameError, NetError, WireError};

use fir_trace::json::{self, Json};

/// Frames larger than this are rejected before allocation — a hostile
/// length prefix cannot make the server reserve gigabytes.
pub const MAX_FRAME: usize = 32 << 20;

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// One step of [`FrameReader::poll`].
#[derive(Debug)]
pub enum Poll {
    /// A complete frame's payload.
    Frame(String),
    /// The peer closed cleanly at a frame boundary.
    Eof,
    /// The read timed out mid-wait; buffered partial state is kept and
    /// the next `poll` resumes where this one stopped.
    Idle,
}

/// An incremental frame decoder over any [`Read`].
///
/// Survives read timeouts without losing stream sync: partial header or
/// body bytes stay buffered across [`FrameReader::poll`] calls, so a
/// server thread can interleave socket reads with shutdown checks.
pub struct FrameReader<R> {
    src: R,
    header: [u8; 4],
    header_got: usize,
    body: Vec<u8>,
    body_len: usize,
}

impl<R: Read> FrameReader<R> {
    pub fn new(src: R) -> FrameReader<R> {
        FrameReader {
            src,
            header: [0; 4],
            header_got: 0,
            body: Vec::new(),
            body_len: 0,
        }
    }

    /// Advance the decoder by at most one frame.
    pub fn poll(&mut self) -> Result<Poll, FrameError> {
        // Header phase: accumulate the 4-byte length prefix.
        while self.header_got < 4 {
            let mid_stream = self.header_got > 0;
            match self.src.read(&mut self.header[self.header_got..]) {
                Ok(0) => {
                    return if mid_stream {
                        Err(FrameError::Truncated)
                    } else {
                        Ok(Poll::Eof)
                    };
                }
                Ok(n) => self.header_got += n,
                Err(e) => return idle_or_io(e),
            }
            if self.header_got == 4 {
                let len = u32::from_be_bytes(self.header) as usize;
                if len > MAX_FRAME {
                    return Err(FrameError::Oversized { len });
                }
                self.body_len = len;
                self.body.clear();
                self.body.reserve(len.min(MAX_FRAME));
            }
        }
        // Body phase: accumulate `body_len` payload bytes.
        while self.body.len() < self.body_len {
            let mut chunk = [0u8; 8192];
            let want = (self.body_len - self.body.len()).min(chunk.len());
            match self.src.read(&mut chunk[..want]) {
                Ok(0) => return Err(FrameError::Truncated),
                Ok(n) => self.body.extend_from_slice(&chunk[..n]),
                Err(e) => return idle_or_io(e),
            }
        }
        self.header_got = 0;
        let payload = std::mem::take(&mut self.body);
        match String::from_utf8(payload) {
            Ok(s) => Ok(Poll::Frame(s)),
            Err(_) => Err(FrameError::BadUtf8),
        }
    }
}

fn idle_or_io(e: std::io::Error) -> Result<Poll, FrameError> {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => Ok(Poll::Idle),
        std::io::ErrorKind::Interrupted => Ok(Poll::Idle),
        _ => Err(FrameError::Io(e.to_string())),
    }
}

/// Write one frame (length prefix + payload).
pub fn write_frame<W: Write>(dst: &mut W, payload: &str) -> Result<(), FrameError> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(FrameError::Oversized { len: bytes.len() });
    }
    let mut frame = Vec::with_capacity(4 + bytes.len());
    frame.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    frame.extend_from_slice(bytes);
    dst.write_all(&frame)
        .and_then(|()| dst.flush())
        .map_err(|e| FrameError::Io(e.to_string()))
}

// ---------------------------------------------------------------------
// JSON building blocks
// ---------------------------------------------------------------------

/// Escape a string for a JSON string literal (same rules as the metrics
/// exporter: `"`/`\` escaped, control characters as `\uXXXX`).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A finite f64 as a JSON number (shortest round-trip form), a
/// non-finite one as its sentinel string.
fn f64_json(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else if x.is_nan() {
        "\"NaN\"".to_string()
    } else if x > 0.0 {
        "\"Infinity\"".to_string()
    } else {
        "\"-Infinity\"".to_string()
    }
}

fn f64_from_json(j: &Json) -> Result<f64, String> {
    match j {
        Json::Num(x) => Ok(*x),
        Json::Str(s) => match s.as_str() {
            "NaN" => Ok(f64::NAN),
            "Infinity" => Ok(f64::INFINITY),
            "-Infinity" => Ok(f64::NEG_INFINITY),
            other => Err(format!("not an f64 sentinel: {other:?}")),
        },
        other => Err(format!("expected f64, got {other:?}")),
    }
}

fn i64_from_json(j: &Json) -> Result<i64, String> {
    match j {
        // Canonical form: a decimal string (full 64-bit precision).
        Json::Str(s) => s.parse::<i64>().map_err(|e| format!("bad i64 {s:?}: {e}")),
        // Tolerated: an integral JSON number within f64's exact range.
        Json::Num(x) if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) => Ok(*x as i64),
        other => Err(format!("expected i64, got {other:?}")),
    }
}

fn u64_field(j: &Json, key: &str) -> Result<u64, String> {
    let v = j.get(key).ok_or_else(|| format!("missing {key:?}"))?;
    match v {
        Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Ok(*x as u64),
        other => Err(format!(
            "{key:?} must be a non-negative integer, got {other:?}"
        )),
    }
}

// ---------------------------------------------------------------------
// Value codec
// ---------------------------------------------------------------------

/// Encode one [`Value`] into its wire envelope. Accumulator handles are
/// process-local and never cross the wire.
pub fn encode_value(v: &Value) -> Result<String, NetError> {
    match v {
        Value::F64(x) => Ok(format!("{{\"t\":\"f64\",\"v\":{}}}", f64_json(*x))),
        Value::I64(n) => Ok(format!("{{\"t\":\"i64\",\"v\":\"{n}\"}}")),
        Value::Bool(b) => Ok(format!("{{\"t\":\"bool\",\"v\":{b}}}")),
        Value::Arr(a) => {
            let shape: Vec<String> = a.shape.iter().map(|d| d.to_string()).collect();
            let (elem, data) = match a.elem() {
                ScalarType::F64 => (
                    "f64",
                    a.f64s().iter().map(|x| f64_json(*x)).collect::<Vec<_>>(),
                ),
                ScalarType::I64 => ("i64", a.i64s().iter().map(|n| format!("\"{n}\"")).collect()),
                ScalarType::Bool => ("bool", a.bools().iter().map(|b| b.to_string()).collect()),
            };
            Ok(format!(
                "{{\"t\":\"arr\",\"elem\":\"{elem}\",\"shape\":[{}],\"data\":[{}]}}",
                shape.join(","),
                data.join(",")
            ))
        }
        Value::Acc(_) => Err(NetError::Protocol {
            what: "accumulator handles cannot cross the wire".to_string(),
        }),
    }
}

/// Decode one wire envelope back into a [`Value`]. Every malformed shape
/// — wrong tag, shape/data mismatch, absurd dimensions — is a typed
/// error, never a panic.
pub fn decode_value(j: &Json) -> Result<Value, String> {
    let t = j
        .get("t")
        .and_then(Json::as_str)
        .ok_or("value missing \"t\" tag")?;
    match t {
        "f64" => Ok(Value::F64(f64_from_json(
            j.get("v").ok_or("f64 missing \"v\"")?,
        )?)),
        "i64" => Ok(Value::I64(i64_from_json(
            j.get("v").ok_or("i64 missing \"v\"")?,
        )?)),
        "bool" => match j.get("v") {
            Some(Json::Bool(b)) => Ok(Value::Bool(*b)),
            other => Err(format!("expected bool \"v\", got {other:?}")),
        },
        "arr" => {
            let shape_j = j
                .get("shape")
                .and_then(Json::as_arr)
                .ok_or("arr missing \"shape\" array")?;
            let mut shape = Vec::with_capacity(shape_j.len());
            let mut product = 1usize;
            for d in shape_j {
                let d = match d {
                    Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= usize::MAX as f64 => {
                        *x as usize
                    }
                    other => return Err(format!("bad shape dimension {other:?}")),
                };
                product = product
                    .checked_mul(d)
                    .ok_or("shape product overflows usize")?;
                shape.push(d);
            }
            let data = j
                .get("data")
                .and_then(Json::as_arr)
                .ok_or("arr missing \"data\" array")?;
            if data.len() != product {
                return Err(format!(
                    "shape {shape:?} wants {product} elements, data has {}",
                    data.len()
                ));
            }
            let elem = j
                .get("elem")
                .and_then(Json::as_str)
                .ok_or("arr missing \"elem\"")?;
            match elem {
                "f64" => {
                    let xs: Result<Vec<f64>, String> = data.iter().map(f64_from_json).collect();
                    Ok(Value::Arr(Array::from_f64(shape, xs?)))
                }
                "i64" => {
                    let ns: Result<Vec<i64>, String> = data.iter().map(i64_from_json).collect();
                    Ok(Value::Arr(Array::from_i64(shape, ns?)))
                }
                "bool" => {
                    let bs: Result<Vec<bool>, String> = data
                        .iter()
                        .map(|b| match b {
                            Json::Bool(b) => Ok(*b),
                            other => Err(format!("expected bool element, got {other:?}")),
                        })
                        .collect();
                    Ok(Value::Arr(Array::from_bool(shape, bs?)))
                }
                other => Err(format!("unknown element type {other:?}")),
            }
        }
        other => Err(format!("unknown value tag {other:?}")),
    }
}

fn transform_name(t: Transform) -> &'static str {
    match t {
        Transform::Vjp => "vjp",
        Transform::Jvp => "jvp",
        Transform::Vmap => "vmap",
    }
}

fn transform_from(s: &str) -> Result<Transform, String> {
    match s {
        "vjp" => Ok(Transform::Vjp),
        "jvp" => Ok(Transform::Jvp),
        "vmap" => Ok(Transform::Vmap),
        other => Err(format!("unknown transform {other:?}")),
    }
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// The payload of a `call` / `grad` request.
#[derive(Debug, Clone)]
pub struct CallRequest {
    /// The registered function key.
    pub fn_key: String,
    /// The transform stack, left to right.
    pub transforms: Vec<Transform>,
    /// Arguments for the (transformed) function.
    pub args: Vec<Value>,
    /// Give up if not executing within this many milliseconds.
    pub deadline_ms: Option<u64>,
    /// The submitting tenant (empty: anonymous).
    pub tenant: String,
}

/// Every request a client can send.
#[derive(Debug, Clone)]
pub enum WireRequest {
    /// Execute the (transformed) function.
    Call(CallRequest),
    /// Reverse-mode gradient of the (transformed) function.
    Grad(CallRequest),
    /// Liveness probe.
    Ping,
    /// Fetch the merged server metrics as JSON.
    Metrics,
    /// Ask the server process to shut down gracefully.
    Shutdown,
}

/// Encode a request frame payload.
pub fn encode_request(id: u64, req: &WireRequest) -> Result<String, NetError> {
    let op = match req {
        WireRequest::Call(_) => "call",
        WireRequest::Grad(_) => "grad",
        WireRequest::Ping => "ping",
        WireRequest::Metrics => "metrics",
        WireRequest::Shutdown => "shutdown",
    };
    let mut out = format!("{{\"op\":\"{op}\",\"id\":{id}");
    if let WireRequest::Call(c) | WireRequest::Grad(c) = req {
        out.push_str(&format!(",\"fn\":\"{}\"", escape(&c.fn_key)));
        if !c.transforms.is_empty() {
            let names: Vec<String> = c
                .transforms
                .iter()
                .map(|t| format!("\"{}\"", transform_name(*t)))
                .collect();
            out.push_str(&format!(",\"transforms\":[{}]", names.join(",")));
        }
        let args: Result<Vec<String>, NetError> = c.args.iter().map(encode_value).collect();
        out.push_str(&format!(",\"args\":[{}]", args?.join(",")));
        if let Some(ms) = c.deadline_ms {
            out.push_str(&format!(",\"deadline_ms\":{ms}"));
        }
        if !c.tenant.is_empty() {
            out.push_str(&format!(",\"tenant\":\"{}\"", escape(&c.tenant)));
        }
    }
    out.push('}');
    Ok(out)
}

/// Decode a request frame payload. The request id is extracted
/// best-effort first (0 if absent/garbled) so even a malformed request
/// can be answered with the id the client is waiting on.
pub fn decode_request(payload: &str) -> (u64, Result<WireRequest, NetError>) {
    let j = match json::parse(payload) {
        Ok(j) => j,
        Err(e) => {
            return (
                0,
                Err(NetError::Protocol {
                    what: format!("request is not JSON: {e}"),
                }),
            )
        }
    };
    let id = u64_field(&j, "id").unwrap_or(0);
    (id, decode_request_body(&j))
}

fn decode_request_body(j: &Json) -> Result<WireRequest, NetError> {
    let proto = |what: String| NetError::Protocol { what };
    let op = j
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| proto("request missing \"op\"".to_string()))?;
    match op {
        "ping" => Ok(WireRequest::Ping),
        "metrics" => Ok(WireRequest::Metrics),
        "shutdown" => Ok(WireRequest::Shutdown),
        "call" | "grad" => {
            let fn_key = j
                .get("fn")
                .and_then(Json::as_str)
                .ok_or_else(|| proto(format!("{op} request missing \"fn\"")))?
                .to_string();
            let mut transforms = Vec::new();
            if let Some(ts) = j.get("transforms") {
                let ts = ts
                    .as_arr()
                    .ok_or_else(|| proto("\"transforms\" must be an array".to_string()))?;
                for t in ts {
                    let name = t
                        .as_str()
                        .ok_or_else(|| proto("transform names must be strings".to_string()))?;
                    transforms.push(transform_from(name).map_err(proto)?);
                }
            }
            let args_j = j
                .get("args")
                .and_then(Json::as_arr)
                .ok_or_else(|| proto(format!("{op} request missing \"args\" array")))?;
            let mut args = Vec::with_capacity(args_j.len());
            for (i, a) in args_j.iter().enumerate() {
                args.push(decode_value(a).map_err(|e| proto(format!("args[{i}]: {e}")))?);
            }
            let deadline_ms = match j.get("deadline_ms") {
                None => None,
                Some(_) => Some(u64_field(j, "deadline_ms").map_err(proto)?),
            };
            let tenant = j
                .get("tenant")
                .map(|t| {
                    t.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| proto("\"tenant\" must be a string".to_string()))
                })
                .transpose()?
                .unwrap_or_default();
            let call = CallRequest {
                fn_key,
                transforms,
                args,
                deadline_ms,
                tenant,
            };
            Ok(if op == "call" {
                WireRequest::Call(call)
            } else {
                WireRequest::Grad(call)
            })
        }
        other => Err(proto(format!("unknown op {other:?}"))),
    }
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

/// Every response the server can send. Paired with the request `id` and
/// a per-request trace id on the wire.
#[derive(Debug, Clone)]
pub enum WireResponse {
    /// A `call`'s results.
    Values(Vec<Value>),
    /// A `grad`'s primal values and adjoints.
    Grad {
        /// The primal results.
        value: Vec<Value>,
        /// The adjoints, in parameter order.
        grads: Vec<Value>,
    },
    /// Answer to `ping`.
    Pong,
    /// Answer to `metrics`: the merged snapshot, pre-rendered as JSON.
    MetricsJson(String),
    /// Answer to `shutdown`: acknowledged, the server is draining.
    Bye,
    /// A typed failure.
    Error(WireError),
}

/// Encode a response frame payload.
pub fn encode_response(id: u64, trace: u64, resp: &WireResponse) -> Result<String, NetError> {
    let body = match resp {
        WireResponse::Values(vs) => {
            let vs: Result<Vec<String>, NetError> = vs.iter().map(encode_value).collect();
            format!("\"ok\":{{\"values\":[{}]}}", vs?.join(","))
        }
        WireResponse::Grad { value, grads } => {
            let vs: Result<Vec<String>, NetError> = value.iter().map(encode_value).collect();
            let gs: Result<Vec<String>, NetError> = grads.iter().map(encode_value).collect();
            format!(
                "\"ok\":{{\"value\":[{}],\"grads\":[{}]}}",
                vs?.join(","),
                gs?.join(",")
            )
        }
        WireResponse::Pong => "\"ok\":{\"pong\":true}".to_string(),
        WireResponse::MetricsJson(m) => format!("\"ok\":{{\"metrics\":\"{}\"}}", escape(m)),
        WireResponse::Bye => "\"ok\":{\"bye\":true}".to_string(),
        WireResponse::Error(e) => {
            let mut err = format!(
                "\"err\":{{\"code\":\"{}\",\"message\":\"{}\"",
                escape(&e.code),
                escape(&e.message)
            );
            if let Some(t) = &e.tenant {
                err.push_str(&format!(",\"tenant\":\"{}\"", escape(t)));
            }
            err.push('}');
            err
        }
    };
    Ok(format!("{{\"id\":{id},\"trace\":{trace},{body}}}"))
}

/// Decode a response frame payload into `(id, trace, response)`.
pub fn decode_response(payload: &str) -> Result<(u64, u64, WireResponse), NetError> {
    let proto = |what: String| NetError::Protocol { what };
    let j = json::parse(payload).map_err(|e| proto(format!("response is not JSON: {e}")))?;
    let id = u64_field(&j, "id").map_err(proto)?;
    let trace = u64_field(&j, "trace").unwrap_or(0);
    if let Some(err) = j.get("err") {
        let code = err
            .get("code")
            .and_then(Json::as_str)
            .ok_or_else(|| proto("error missing \"code\"".to_string()))?
            .to_string();
        let message = err
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let tenant = err.get("tenant").and_then(Json::as_str).map(str::to_string);
        return Ok((
            id,
            trace,
            WireResponse::Error(WireError {
                code,
                message,
                tenant,
            }),
        ));
    }
    let ok = j
        .get("ok")
        .ok_or_else(|| proto("response has neither \"ok\" nor \"err\"".to_string()))?;
    let resp = if let Some(vs) = ok.get("values").and_then(Json::as_arr) {
        let vs: Result<Vec<Value>, String> = vs.iter().map(decode_value).collect();
        WireResponse::Values(vs.map_err(proto)?)
    } else if let Some(vs) = ok.get("value").and_then(Json::as_arr) {
        let gs = ok
            .get("grads")
            .and_then(Json::as_arr)
            .ok_or_else(|| proto("grad response missing \"grads\"".to_string()))?;
        let value: Result<Vec<Value>, String> = vs.iter().map(decode_value).collect();
        let grads: Result<Vec<Value>, String> = gs.iter().map(decode_value).collect();
        WireResponse::Grad {
            value: value.map_err(proto)?,
            grads: grads.map_err(proto)?,
        }
    } else if ok.get("pong").is_some() {
        WireResponse::Pong
    } else if let Some(m) = ok.get("metrics").and_then(Json::as_str) {
        WireResponse::MetricsJson(m.to_string())
    } else if ok.get("bye").is_some() {
        WireResponse::Bye
    } else {
        return Err(proto("unrecognized \"ok\" payload".to_string()));
    };
    Ok((id, trace, resp))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_value(v: &Value) -> Value {
        let enc = encode_value(v).unwrap();
        let j = json::parse(&enc).unwrap();
        decode_value(&j).unwrap()
    }

    #[test]
    fn scalars_roundtrip_bitwise() {
        for x in [
            0.0,
            -0.0,
            1.5,
            -1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::EPSILON,
            1e-300,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let got = roundtrip_value(&Value::F64(x));
            assert_eq!(got.as_f64().to_bits(), x.to_bits(), "x = {x}");
        }
        for n in [0i64, -1, i64::MAX, i64::MIN, 1 << 60] {
            assert_eq!(roundtrip_value(&Value::I64(n)).as_i64(), n);
        }
        assert!(roundtrip_value(&Value::Bool(true)).as_bool());
    }

    #[test]
    fn arrays_roundtrip_with_shape_and_type() {
        let a = Value::Arr(Array::from_f64(
            vec![2, 3],
            vec![1.0, -0.0, f64::NAN, 4.5, 1e-300, f64::INFINITY],
        ));
        let got = roundtrip_value(&a);
        let (a, g) = (a.as_arr(), got.as_arr());
        assert_eq!(a.shape, g.shape);
        for (x, y) in a.f64s().iter().zip(g.f64s()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        let b = Value::Arr(Array::from_i64(vec![3], vec![i64::MIN, 0, i64::MAX]));
        assert_eq!(roundtrip_value(&b).as_arr().i64s(), b.as_arr().i64s());
        let c = Value::Arr(Array::from_bool(vec![2], vec![true, false]));
        assert_eq!(roundtrip_value(&c).as_arr().bools(), c.as_arr().bools());
        // Rank-0 and empty arrays survive too.
        let d = Value::Arr(Array::from_f64(vec![], vec![2.25]));
        assert_eq!(roundtrip_value(&d).as_arr().f64s(), &[2.25]);
        let e = Value::Arr(Array::from_f64(vec![0], vec![]));
        assert_eq!(roundtrip_value(&e).as_arr().shape, vec![0]);
    }

    #[test]
    fn hostile_values_are_typed_errors_not_panics() {
        for bad in [
            "{\"t\":\"arr\",\"elem\":\"f64\",\"shape\":[2,3],\"data\":[1]}",
            "{\"t\":\"arr\",\"elem\":\"f64\",\"shape\":[-1],\"data\":[]}",
            "{\"t\":\"arr\",\"elem\":\"f64\",\"shape\":[1e300,1e300],\"data\":[]}",
            "{\"t\":\"arr\",\"elem\":\"wat\",\"shape\":[0],\"data\":[]}",
            "{\"t\":\"f64\",\"v\":\"nan\"}",
            "{\"t\":\"i64\",\"v\":1.5}",
            "{\"t\":\"i64\",\"v\":\"99999999999999999999999\"}",
            "{\"t\":\"bool\",\"v\":\"true\"}",
            "{\"t\":\"quux\"}",
            "{}",
            "[]",
        ] {
            let j = json::parse(bad).unwrap();
            assert!(decode_value(&j).is_err(), "accepted hostile value {bad}");
        }
    }

    #[test]
    fn requests_roundtrip() {
        let req = WireRequest::Call(CallRequest {
            fn_key: "gmm \"v1\"".to_string(),
            transforms: vec![Transform::Vjp, Transform::Vmap],
            args: vec![Value::F64(1.5), Value::I64(-7)],
            deadline_ms: Some(250),
            tenant: "pro\\tenant".to_string(),
        });
        let enc = encode_request(42, &req).unwrap();
        let (id, got) = decode_request(&enc);
        assert_eq!(id, 42);
        // Value has no PartialEq (NaN); compare the re-encoded wire form.
        assert_eq!(encode_request(42, &got.unwrap()).unwrap(), enc);
        for simple in [
            WireRequest::Ping,
            WireRequest::Metrics,
            WireRequest::Shutdown,
        ] {
            let enc = encode_request(7, &simple).unwrap();
            let (id, got) = decode_request(&enc);
            assert_eq!(id, 7);
            assert_eq!(encode_request(7, &got.unwrap()).unwrap(), enc);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let cases = vec![
            WireResponse::Values(vec![Value::F64(f64::NAN), Value::Bool(false)]),
            WireResponse::Grad {
                value: vec![Value::F64(3.0)],
                grads: vec![Value::Arr(Array::vec_f64(vec![1.0, -0.0]))],
            },
            WireResponse::Pong,
            WireResponse::MetricsJson("{\"functions\": []}".to_string()),
            WireResponse::Bye,
            WireResponse::Error(WireError::quota("free", "rate limit exhausted")),
            WireResponse::Error(WireError::bad_request("args[0]: unknown value tag")),
        ];
        for resp in cases {
            let enc = encode_response(9, 1234, &resp).unwrap();
            let (id, trace, got) = decode_response(&enc).unwrap();
            assert_eq!((id, trace), (9, 1234));
            // NaN != NaN under PartialEq; compare the re-encoded form.
            assert_eq!(
                encode_response(9, 1234, &got).unwrap(),
                enc,
                "wire form must be stable"
            );
        }
    }

    #[test]
    fn framing_rejects_hostile_prefixes() {
        // Oversized length prefix: rejected before any allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(u32::MAX).to_be_bytes());
        huge.extend_from_slice(b"xxxx");
        let mut r = FrameReader::new(&huge[..]);
        assert!(matches!(r.poll(), Err(FrameError::Oversized { .. })));

        // Truncated frame: the stream ends mid-body.
        let mut cut = Vec::new();
        cut.extend_from_slice(&(100u32).to_be_bytes());
        cut.extend_from_slice(b"only a few bytes");
        let mut r = FrameReader::new(&cut[..]);
        assert!(matches!(r.poll(), Err(FrameError::Truncated)));

        // Truncated header.
        let mut r = FrameReader::new(&[0u8, 0][..]);
        assert!(matches!(r.poll(), Err(FrameError::Truncated)));

        // Bad UTF-8 payload.
        let mut bad = Vec::new();
        bad.extend_from_slice(&(2u32).to_be_bytes());
        bad.extend_from_slice(&[0xff, 0xfe]);
        let mut r = FrameReader::new(&bad[..]);
        assert!(matches!(r.poll(), Err(FrameError::BadUtf8)));

        // Clean EOF at a frame boundary.
        let mut ok = Vec::new();
        write_frame(&mut ok, "{}").unwrap();
        let mut r = FrameReader::new(&ok[..]);
        assert!(matches!(r.poll(), Ok(Poll::Frame(s)) if s == "{}"));
        assert!(matches!(r.poll(), Ok(Poll::Eof)));
    }

    #[test]
    fn frames_survive_interleaved_partial_reads() {
        // A reader that yields one byte at a time, interleaving WouldBlock
        // "timeouts" — the decoder must resynchronize across Idle polls.
        struct Trickle {
            data: Vec<u8>,
            pos: usize,
            tick: bool,
        }
        impl std::io::Read for Trickle {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                self.tick = !self.tick;
                if self.tick {
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                if self.pos == self.data.len() {
                    return Ok(0);
                }
                buf[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let mut data = Vec::new();
        write_frame(&mut data, "first frame").unwrap();
        write_frame(&mut data, "second ✓").unwrap();
        let mut r = FrameReader::new(Trickle {
            data,
            pos: 0,
            tick: false,
        });
        let mut frames = Vec::new();
        loop {
            match r.poll().unwrap() {
                Poll::Frame(s) => frames.push(s),
                Poll::Eof => break,
                Poll::Idle => continue,
            }
        }
        assert_eq!(frames, vec!["first frame", "second ✓"]);
    }
}
