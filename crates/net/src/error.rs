//! The network-tier error type and its wire representation.
//!
//! Everything that can go wrong between a socket and the serving runtime
//! is a [`NetError`]. Server-side failures cross the wire as a typed
//! `{code, message, tenant?}` object (see [`WireError`]); the client
//! decodes them into [`NetError::Remote`] without ever panicking on
//! hostile input.

use std::fmt;

use fir_serve::ServeError;

/// A framing-layer failure: the byte stream could not be sliced into
/// frames (as opposed to a well-framed but malformed payload, which is
/// [`NetError::Protocol`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`crate::wire::MAX_FRAME`].
    Oversized {
        /// The advertised payload length.
        len: usize,
    },
    /// The peer closed the connection in the middle of a frame.
    Truncated,
    /// The frame payload is not valid UTF-8.
    BadUtf8,
    /// The underlying socket failed.
    Io(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { len } => write!(
                f,
                "frame of {len} bytes exceeds the {} byte limit",
                crate::wire::MAX_FRAME
            ),
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
            FrameError::BadUtf8 => write!(f, "frame payload is not valid UTF-8"),
            FrameError::Io(what) => write!(f, "socket error: {what}"),
        }
    }
}

/// An error from the network serving tier.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// The byte stream could not be framed.
    Frame(FrameError),
    /// A well-framed payload that is not a valid request/response.
    Protocol {
        /// What was malformed.
        what: String,
    },
    /// A socket operation failed outside framing.
    Io(String),
    /// A serving-layer error, surfaced locally (server side).
    Serve(ServeError),
    /// A typed error decoded off the wire (client side): the server's
    /// `{code, message, tenant?}` object.
    Remote(WireError),
    /// The server could not be configured or started.
    Config {
        /// What was wrong.
        what: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Frame(e) => write!(f, "framing: {e}"),
            NetError::Protocol { what } => write!(f, "protocol: {what}"),
            NetError::Io(what) => write!(f, "io: {what}"),
            NetError::Serve(e) => write!(f, "serve: {e}"),
            NetError::Remote(e) => write!(f, "remote {}: {}", e.code, e.message),
            NetError::Config { what } => write!(f, "config: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> NetError {
        NetError::Frame(e)
    }
}

impl From<ServeError> for NetError {
    fn from(e: ServeError) -> NetError {
        NetError::Serve(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        NetError::Io(e.to_string())
    }
}

/// The wire form of a server-side error: a stable machine-readable
/// `code`, a human-readable `message`, and — for tenant-quota sheds —
/// the tenant that was throttled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// One of the stable codes in [`WireError::CODES`].
    pub code: String,
    /// Human-readable detail.
    pub message: String,
    /// The tenant named by a quota/fairness shed.
    pub tenant: Option<String>,
}

impl WireError {
    /// Every code the server emits. Clients can match on these without
    /// parsing messages.
    pub const CODES: [&'static str; 9] = [
        "overloaded",
        "shutting_down",
        "unknown_fn",
        "deadline_exceeded",
        "exec",
        "config",
        "internal",
        "bad_frame",
        "bad_request",
    ];

    /// The wire form of a [`ServeError`].
    pub fn from_serve(e: &ServeError) -> WireError {
        let code = match e {
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::UnknownFn { .. } => "unknown_fn",
            ServeError::DeadlineExceeded { .. } => "deadline_exceeded",
            ServeError::Exec(_) => "exec",
            ServeError::Config { .. } => "config",
            ServeError::Internal { .. } => "internal",
        };
        WireError {
            code: code.to_string(),
            message: e.to_string(),
            tenant: None,
        }
    }

    /// The wire form of a tenant-quota shed: `overloaded`, naming the
    /// tenant whose quota or fairness share was exhausted.
    pub fn quota(tenant: &str, why: &str) -> WireError {
        WireError {
            code: "overloaded".to_string(),
            message: format!("tenant {tenant:?} {why}"),
            tenant: Some(tenant.to_string()),
        }
    }

    /// A malformed-request error (well-framed, bad payload).
    pub fn bad_request(what: &str) -> WireError {
        WireError {
            code: "bad_request".to_string(),
            message: what.to_string(),
            tenant: None,
        }
    }

    /// A framing-level error the server reports before closing.
    pub fn bad_frame(what: &str) -> WireError {
        WireError {
            code: "bad_frame".to_string(),
            message: what.to_string(),
            tenant: None,
        }
    }
}
