//! The adaptive batching controller: a feedback loop that retunes every
//! serving lane's `max_batch_size` / `max_wait` online from live
//! metrics.
//!
//! Static batch policies face a trade-off the operator must guess at
//! deploy time: a long `max_wait` builds large batches (amortizing
//! dispatch — the whole point of the serving tier) but adds queueing
//! latency; a short one keeps latency low but starves the batcher at
//! high load. The controller measures instead of guessing. Every
//! [`AdaptiveConfig::interval`] it windows each function's metrics
//! (`HistogramSnapshot::since`) and applies [`decide`]:
//!
//! * **p99 over the SLO** → halve `max_wait`: queueing is the knob that
//!   hurts tail latency first.
//! * **queue depth exceeds the batch bound** → double `max_batch_size`
//!   (and stretch `max_wait` toward its cap): the server is falling
//!   behind, so buy throughput with bigger batches.
//! * **p99 far under the SLO** (≤ ¼) with traffic queued → grow
//!   `max_wait` additively: latency headroom is traded for fuller
//!   batches.
//!
//! Decisions are pure ([`decide`] is a function of the observation
//! only), deterministic, and clamped to `[min_batch, max_batch] ×
//! [min_wait, max_wait]`; the controller starts from the configured
//! static policy, so in the worst case (a workload the feedback cannot
//! help) it converges back to the static configuration rather than
//! below it. Every adjustment is recorded as `net`/`adaptive_batch` and
//! `net`/`adaptive_wait_us` trace counters and counted in the
//! `adaptive_adjustments` metric.

use std::time::Duration;

use fir_serve::BatchPolicy;

/// Bounds and targets for the feedback controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// How often the controller samples metrics and retunes.
    pub interval: Duration,
    /// Lower bound for `max_batch_size`.
    pub min_batch: usize,
    /// Upper bound for `max_batch_size`.
    pub max_batch: usize,
    /// Lower bound for `max_wait`.
    pub min_wait: Duration,
    /// Upper bound for `max_wait`.
    pub max_wait: Duration,
    /// The p99 latency objective the controller protects.
    pub slo: Duration,
}

impl Default for AdaptiveConfig {
    fn default() -> AdaptiveConfig {
        AdaptiveConfig {
            interval: Duration::from_millis(50),
            min_batch: 1,
            max_batch: 256,
            min_wait: Duration::ZERO,
            max_wait: Duration::from_millis(5),
            slo: Duration::from_millis(10),
        }
    }
}

/// One controller sampling window's worth of evidence.
#[derive(Debug, Clone, Copy, Default)]
pub struct Observation {
    /// Requests completed in the window.
    pub completed: u64,
    /// The window's p99 latency in microseconds.
    pub p99_us: u64,
    /// Queue depth at the end of the window.
    pub queue_depth: usize,
}

/// One feedback step: the next policy for a lane currently at `cur`,
/// given the window `obs`. Pure and total — unit-testable without a
/// server or a clock.
pub fn decide(cur: BatchPolicy, obs: &Observation, cfg: &AdaptiveConfig) -> BatchPolicy {
    let mut batch = cur.max_batch_size.clamp(cfg.min_batch, cfg.max_batch);
    let mut wait = cur.max_wait.clamp(cfg.min_wait, cfg.max_wait);
    let slo_us = cfg.slo.as_micros() as u64;

    if obs.completed > 0 && obs.p99_us > slo_us {
        // Tail latency violated: shrink the wait before anything else.
        wait = (wait / 2).max(cfg.min_wait);
    } else if obs.queue_depth > batch {
        // Backlog beyond one batch: the dispatcher cannot keep up at
        // this granularity — buy throughput with bigger cuts.
        batch = (batch * 2).clamp(cfg.min_batch, cfg.max_batch);
        wait = (wait + Duration::from_micros(100)).clamp(cfg.min_wait, cfg.max_wait);
    } else if obs.completed > 0 && obs.queue_depth > 0 && obs.p99_us.saturating_mul(4) <= slo_us {
        // Plenty of latency headroom and work still queuing: trade some
        // of it for fuller batches.
        wait = (wait + Duration::from_micros(50)).clamp(cfg.min_wait, cfg.max_wait);
    }
    BatchPolicy {
        max_batch_size: batch,
        max_wait: wait,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdaptiveConfig {
        AdaptiveConfig::default()
    }

    fn pol(batch: usize, wait_us: u64) -> BatchPolicy {
        BatchPolicy {
            max_batch_size: batch,
            max_wait: Duration::from_micros(wait_us),
        }
    }

    #[test]
    fn slo_violation_halves_the_wait() {
        let next = decide(
            pol(16, 4000),
            &Observation {
                completed: 100,
                p99_us: 50_000,
                queue_depth: 3,
            },
            &cfg(),
        );
        assert_eq!(next.max_wait, Duration::from_micros(2000));
        assert_eq!(next.max_batch_size, 16);
        // Repeated violations drive the wait to the floor, not below.
        let mut p = next;
        for _ in 0..40 {
            p = decide(
                p,
                &Observation {
                    completed: 10,
                    p99_us: 50_000,
                    queue_depth: 0,
                },
                &cfg(),
            );
        }
        assert_eq!(p.max_wait, cfg().min_wait);
    }

    #[test]
    fn backlog_doubles_the_batch_up_to_the_cap() {
        let mut p = pol(4, 100);
        for _ in 0..10 {
            p = decide(
                p,
                &Observation {
                    completed: 50,
                    p99_us: 500,
                    queue_depth: 10_000,
                },
                &cfg(),
            );
        }
        assert_eq!(p.max_batch_size, cfg().max_batch);
        assert!(p.max_wait > Duration::from_micros(100));
        assert!(p.max_wait <= cfg().max_wait);
    }

    #[test]
    fn latency_headroom_grows_the_wait_additively() {
        let next = decide(
            pol(16, 200),
            &Observation {
                completed: 100,
                p99_us: 100, // 100us << 10ms/4
                queue_depth: 2,
            },
            &cfg(),
        );
        assert_eq!(next.max_wait, Duration::from_micros(250));
        // An idle window (no completions, nothing queued) changes nothing.
        let idle = decide(pol(16, 200), &Observation::default(), &cfg());
        assert_eq!(idle, pol(16, 200));
    }

    #[test]
    fn outputs_always_respect_the_configured_bounds() {
        let c = cfg();
        // Start way outside the bounds; one step must clamp back in.
        let wild = decide(
            pol(100_000, 10_000_000),
            &Observation {
                completed: 1,
                p99_us: 1,
                queue_depth: 0,
            },
            &c,
        );
        assert!(wild.max_batch_size <= c.max_batch);
        assert!(wild.max_wait <= c.max_wait);
        let tiny = decide(pol(0, 0), &Observation::default(), &c);
        assert!(tiny.max_batch_size >= c.min_batch);
    }
}
