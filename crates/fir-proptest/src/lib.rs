//! `fir-proptest` — a sized random generator of *well-typed* `fir`
//! programs, with matching argument values, for property-based and
//! differential testing.
//!
//! The generator draws from an expression/SOAC grammar over `f64`/`i64`
//! scalars and rank-1/rank-2 `f64` arrays: scalar arithmetic and
//! transcendentals, `select`, constant indexing, `len`/`replicate`,
//! `map` (including nested maps over matrix rows, with captured outer
//! scalars — fodder for the hoisting pass), `reduce` with recognized
//! associative operators, prefix sums, `if` over scalar conditions,
//! bounded sequential `loop`s, and `copy` + constant-index `update`
//! pairs (fodder for the memory-planning pass's in-place lowering). Every rank-1 array in a generated program
//! shares one outer length and every rank-2 array one shape, and indices
//! are constants within bounds, so programs never trap at runtime.
//!
//! Determinism: generation consumes only the caller's [`TestRng`] (the
//! fixed-seed splitmix64 stream of the vendored `proptest` stand-in), so a
//! given seed always yields the same program — CI reruns and failure
//! reproduction are exact.
//!
//! Two profiles:
//!
//! * [`GenConfig::default`] — the full grammar; results may legitimately be
//!   non-finite (`1/0`, `log` of a negative), which bitwise differential
//!   harnesses handle fine.
//! * [`GenConfig::smooth`] — restricts to operations that are smooth and
//!   bounded on the generated input ranges (no `min`/`max`/`select`/`if`,
//!   no `exp`/`log`/`div`), and returns a single scalar — suitable for
//!   finite-difference gradient checking of the AD transforms.

use fir::builder::Builder;
use fir::ir::{Atom, Fun, ReduceOp, VarId};
use fir::types::Type;
use interp::{Array, Value};
use proptest::{Strategy, TestRng};

/// Tuning knobs for the generator.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Statements generated in the function body (before the result
    /// combine); nested lambda bodies draw their own small budgets.
    pub max_stms: usize,
    /// Maximum SOAC nesting depth (2 = maps over matrix rows containing
    /// inner maps/reductions).
    pub max_depth: usize,
    /// Restrict to smooth, bounded operations (see module docs) and return
    /// a single scalar, for gradient checking.
    pub smooth: bool,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_stms: 8,
            max_depth: 2,
            smooth: false,
        }
    }
}

impl GenConfig {
    /// The gradient-checkable profile.
    pub fn smooth() -> GenConfig {
        GenConfig {
            smooth: true,
            ..GenConfig::default()
        }
    }
}

/// Generate one well-typed function plus matching argument values.
///
/// The returned program type-checks by construction (the harnesses assert
/// it anyway) and runs without panicking on the returned arguments on every
/// backend.
pub fn arbitrary_fun(name: &str, rng: &mut TestRng, cfg: &GenConfig) -> (Fun, Vec<Value>) {
    let n = rng.below(2, 5); // shared rank-1 length
    let m = rng.below(2, 4); // shared inner length of rank-2 arrays
    let num_f64 = rng.below(1, 3);
    let num_arr1 = rng.below(1, 3);
    let num_arr2 = usize::from(!cfg.smooth && rng.below(0, 2) == 1);

    let mut param_tys = Vec::new();
    let mut args = Vec::new();
    for _ in 0..num_f64 {
        param_tys.push(Type::F64);
        args.push(Value::F64(unit_range(rng)));
    }
    for _ in 0..num_arr1 {
        param_tys.push(Type::arr_f64(1));
        args.push(Value::Arr(Array::from_f64(
            vec![n],
            (0..n).map(|_| unit_range(rng)).collect(),
        )));
    }
    for _ in 0..num_arr2 {
        param_tys.push(Type::arr_f64(2));
        args.push(Value::Arr(Array::from_f64(
            vec![n, m],
            (0..n * m).map(|_| unit_range(rng)).collect(),
        )));
    }

    let mut b = Builder::new();
    let fun = b.build_fun(name, &param_tys, |b, ps| {
        let mut g = Gen {
            rng,
            cfg,
            n,
            f64s: Vec::new(),
            arr1: Vec::new(),
            arr2: Vec::new(),
        };
        for (p, ty) in ps.iter().zip(&param_tys) {
            match ty {
                Type::Scalar(_) => g.f64s.push(*p),
                Type::Array { rank: 1, .. } => g.arr1.push(*p),
                _ => g.arr2.push(*p),
            }
        }
        for _ in 0..g.rng.below(3, cfg.max_stms.max(4)) {
            g.stm(b, cfg.max_depth);
        }
        g.result(b)
    });
    (fun, args)
}

/// A `proptest` strategy producing `(Fun, args)` pairs; usable in
/// `proptest!` bodies from any test crate.
pub struct FunStrategy(pub GenConfig);

impl Strategy for FunStrategy {
    type Value = (Fun, Vec<Value>);
    fn generate(&self, rng: &mut TestRng) -> (Fun, Vec<Value>) {
        arbitrary_fun("fuzz", rng, &self.0)
    }
}

fn unit_range(rng: &mut TestRng) -> f64 {
    rng.unit_f64() * 3.0 - 1.5
}

struct Gen<'a> {
    rng: &'a mut TestRng,
    cfg: &'a GenConfig,
    /// The shared outer length of every rank-1 array in the program.
    n: usize,
    f64s: Vec<VarId>,
    arr1: Vec<VarId>,
    arr2: Vec<VarId>,
}

impl Gen<'_> {
    fn pick(&mut self, pool_len: usize) -> usize {
        self.rng.below(0, pool_len)
    }

    fn scalar(&mut self, _b: &mut Builder) -> Atom {
        if self.f64s.is_empty() || self.rng.below(0, 4) == 0 {
            Atom::f64(unit_range(self.rng))
        } else {
            let i = self.pick(self.f64s.len());
            Atom::Var(self.f64s[i])
        }
    }

    fn unop(&mut self, b: &mut Builder, x: Atom) -> Atom {
        let smooth_ops = 5usize;
        let all_ops = 9usize;
        let k = self
            .rng
            .below(0, if self.cfg.smooth { smooth_ops } else { all_ops });
        match k {
            0 => b.fsin(x),
            1 => b.fcos(x),
            2 => b.ftanh(x),
            3 => b.fsigmoid(x),
            4 => b.fneg(x),
            5 => b.fexp(x),
            6 => b.flog(x),
            7 => b.fsqrt(x),
            _ => b.fabs(x),
        }
    }

    fn binop(&mut self, b: &mut Builder, x: Atom, y: Atom) -> Atom {
        let smooth_ops = 3usize;
        let all_ops = 6usize;
        let k = self
            .rng
            .below(0, if self.cfg.smooth { smooth_ops } else { all_ops });
        match k {
            0 => b.fadd(x, y),
            1 => b.fsub(x, y),
            2 => b.fmul(x, y),
            3 => b.fdiv(x, y),
            4 => b.fmin(x, y),
            _ => b.fmax(x, y),
        }
    }

    /// A short chain of scalar operations over the given element variables
    /// and the enclosing scalar pool (captures exercise hoisting), ending
    /// in a single atom.
    fn scalar_chain(&mut self, b: &mut Builder, elems: &[VarId]) -> Atom {
        let mut cur: Atom = if elems.is_empty() {
            self.scalar(b)
        } else {
            let i = self.pick(elems.len());
            Atom::Var(elems[i])
        };
        for _ in 0..self.rng.below(1, 4) {
            cur = if self.rng.below(0, 3) == 0 {
                self.unop(b, cur)
            } else {
                let rhs = if !elems.is_empty() && self.rng.below(0, 2) == 0 {
                    let i = self.pick(elems.len());
                    Atom::Var(elems[i])
                } else {
                    self.scalar(b)
                };
                self.binop(b, cur, rhs)
            };
        }
        cur
    }

    fn reduce_op(&mut self) -> ReduceOp {
        if self.cfg.smooth {
            ReduceOp::Add
        } else {
            match self.rng.below(0, 4) {
                0 => ReduceOp::Add,
                1 => ReduceOp::Mul,
                2 => ReduceOp::Min,
                _ => ReduceOp::Max,
            }
        }
    }

    /// Emit one random statement into the current scope.
    fn stm(&mut self, b: &mut Builder, depth: usize) {
        let has_arr1 = !self.arr1.is_empty();
        let has_arr2 = !self.arr2.is_empty();
        // The copy+update arm only exists in the full profile, so the
        // smooth (gradcheck) corpus is unchanged by its addition.
        let choices = if self.cfg.smooth { 10 } else { 11 };
        let choice = self.rng.below(0, choices);
        match choice {
            // Scalar chain.
            0 | 1 => {
                let v = self.scalar_chain(b, &[]);
                if let Atom::Var(v) = v {
                    self.f64s.push(v);
                }
            }
            // Map over one or two rank-1 arrays.
            2..=4 if has_arr1 && depth > 0 => {
                let nargs = 1 + usize::from(self.arr1.len() > 1 && self.rng.below(0, 2) == 1);
                let mut soac_args = Vec::new();
                for _ in 0..nargs {
                    let i = self.pick(self.arr1.len());
                    soac_args.push(self.arr1[i]);
                }
                let out = b.map1(Type::arr_f64(1), &soac_args, |b, es| {
                    vec![self.scalar_chain(b, es)]
                });
                self.arr1.push(out);
            }
            // Reduce a rank-1 array with a recognized operator.
            5 if has_arr1 => {
                let op = self.reduce_op();
                let i = self.pick(self.arr1.len());
                let arr = self.arr1[i];
                let r = b.reduce_op(op, arr);
                self.f64s.push(r);
            }
            // Prefix sum (scan +) keeps the shared length.
            6 if has_arr1 && !self.cfg.smooth => {
                let i = self.pick(self.arr1.len());
                let arr = self.arr1[i];
                let out = b.scan_add(arr);
                self.arr1.push(out);
            }
            // Constant in-bounds index.
            6 if has_arr1 && self.cfg.smooth => {
                let i = self.pick(self.arr1.len());
                let arr = self.arr1[i];
                let c = self.rng.below(0, self.n) as i64;
                let x = b.index(arr, &[Atom::i64(c)]);
                self.f64s.push(x);
            }
            // replicate (len a) s — a fresh rank-1 array of the shared length.
            7 if has_arr1 => {
                let i = self.pick(self.arr1.len());
                let arr = self.arr1[i];
                let l = b.len(arr);
                let s = self.scalar(b);
                let out = b.replicate(l, s);
                self.arr1.push(out);
            }
            // Scalar `if` (non-smooth: a kink) or a constant index (smooth).
            8 => {
                if self.cfg.smooth {
                    if has_arr1 {
                        let i = self.pick(self.arr1.len());
                        let arr = self.arr1[i];
                        let c = self.rng.below(0, self.n) as i64;
                        let x = b.index(arr, &[Atom::i64(c)]);
                        self.f64s.push(x);
                    }
                } else {
                    let x = self.scalar(b);
                    let y = self.scalar(b);
                    let cond = b.lt(x, y);
                    b.begin_scope();
                    let t = self.scalar_chain(b, &[]);
                    let tstms = b.end_scope();
                    b.begin_scope();
                    let e = self.scalar_chain(b, &[]);
                    let estms = b.end_scope();
                    let r = b.bind(
                        &[Type::F64],
                        fir::ir::Exp::If {
                            cond,
                            then_br: fir::ir::Body::new(tstms, vec![t]),
                            else_br: fir::ir::Body::new(estms, vec![e]),
                        },
                    );
                    self.f64s.push(r[0]);
                }
            }
            // Bounded sequential loop carrying one f64.
            9 => {
                let init = self.scalar(b);
                let count = Atom::i64(self.rng.below(1, 4) as i64);
                let r = b.loop_(&[(Type::F64, init)], count, |b, _i, acc| {
                    let chain = self.scalar_chain(b, acc);
                    vec![b.fadd(chain, Atom::Var(acc[0]))]
                });
                self.f64s.push(r[0]);
            }
            // Copy then constant-index update: the functional in-place
            // pair the memory planner rewrites into a true in-place write
            // whenever the copy's source is dead after the update.
            10 if has_arr1 => {
                let i = self.pick(self.arr1.len());
                let arr = self.arr1[i];
                let y = b.copy(arr);
                let c = self.rng.below(0, self.n) as i64;
                let v = self.scalar(b);
                let out = b.update(y, &[Atom::i64(c)], v);
                self.arr1.push(out);
            }
            // Map over matrix rows with a nested reduction.
            _ if has_arr2 && depth > 1 => {
                let i = self.pick(self.arr2.len());
                let mat = self.arr2[i];
                let out = b.map1(Type::arr_f64(1), &[mat], |b, rows| {
                    let sq = b.map1(Type::arr_f64(1), &[rows[0]], |b, es| {
                        vec![self.scalar_chain(b, es)]
                    });
                    vec![Atom::Var(b.sum(sq))]
                });
                self.arr1.push(out);
            }
            _ => {
                let v = self.scalar_chain(b, &[]);
                if let Atom::Var(v) = v {
                    self.f64s.push(v);
                }
            }
        }
    }

    /// Combine live values into the results: a scalar that depends on a
    /// random subset of everything generated (and, in the non-smooth
    /// profile, additionally a rank-1 array result).
    fn result(&mut self, b: &mut Builder) -> Vec<Atom> {
        let mut acc = self.scalar(b);
        let picks = self.rng.below(1, 4);
        for _ in 0..picks {
            let use_arr = !self.arr1.is_empty() && self.rng.below(0, 2) == 0;
            let term = if use_arr {
                let i = self.pick(self.arr1.len());
                let s = b.sum(self.arr1[i]);
                Atom::Var(s)
            } else {
                self.scalar(b)
            };
            acc = b.fadd(acc, term);
        }
        // Always fold in one array sum so every program exercises a SOAC.
        if let Some(&arr) = self.arr1.first() {
            let s = b.sum(arr);
            acc = b.fadd(acc, Atom::Var(s));
        }
        if self.cfg.smooth {
            vec![acc]
        } else if let Some(&arr) = self.arr1.last() {
            vec![acc, Atom::Var(arr)]
        } else {
            vec![acc]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::typecheck::check_fun;
    use interp::Interp;

    #[test]
    fn generated_programs_typecheck_and_run() {
        let mut rng = TestRng::deterministic();
        for case in 0..64 {
            let (fun, args) = arbitrary_fun(&format!("g{case}"), &mut rng, &GenConfig::default());
            check_fun(&fun).unwrap_or_else(|e| panic!("case {case}: {e}\n{fun}"));
            let out = Interp::sequential().run(&fun, &args);
            assert!(!out.is_empty(), "case {case} returned nothing");
        }
    }

    #[test]
    fn smooth_profile_is_finite_and_scalar() {
        let mut rng = TestRng::deterministic();
        for case in 0..64 {
            let (fun, args) = arbitrary_fun(&format!("s{case}"), &mut rng, &GenConfig::smooth());
            check_fun(&fun).unwrap_or_else(|e| panic!("case {case}: {e}\n{fun}"));
            assert_eq!(fun.ret, vec![Type::F64]);
            let out = Interp::sequential().run(&fun, &args);
            assert!(
                out[0].as_f64().is_finite(),
                "case {case} produced {:?}",
                out[0]
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mk = || {
            let mut rng = TestRng::deterministic();
            arbitrary_fun("d", &mut rng, &GenConfig::default())
        };
        let (f1, a1) = mk();
        let (f2, a2) = mk();
        assert_eq!(f1, f2);
        assert_eq!(format!("{a1:?}"), format!("{a2:?}"));
    }
}
