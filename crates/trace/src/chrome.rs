//! Chrome trace-event JSON export.
//!
//! Emits the `{"traceEvents": [...]}` object format understood by
//! [Perfetto](https://ui.perfetto.dev) and `chrome://tracing`:
//! complete spans (`ph: "X"`), instants (`"i"`), counters (`"C"`), and
//! async begin/end pairs (`"b"`/`"e"`) whose shared `id` renders one
//! track per served request even though its events come from different
//! threads. Thread-name metadata events label each thread's track.
//! Timestamps are microseconds (fractional) since the trace epoch.

use crate::{Event, EventKind, Trace};

/// Escape a string for embedding in a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

fn common(e: &Event) -> String {
    format!(
        "\"cat\": \"{}\", \"name\": \"{}\", \"pid\": 1, \"tid\": {}, \"ts\": {}",
        escape(e.cat),
        escape(e.name),
        e.tid,
        us(e.t0_ns)
    )
}

/// Render a drained [`Trace`] as Chrome trace-event JSON.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut rows = Vec::new();
    for t in &trace.threads {
        let label = if t.name.is_empty() {
            format!("thread-{}", t.tid)
        } else {
            t.name.clone()
        };
        rows.push(format!(
            "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": {}, \
             \"args\": {{\"name\": \"{}\"}}}}",
            t.tid,
            escape(&label)
        ));
    }
    for e in &trace.events {
        let row = match e.kind {
            EventKind::Span => format!(
                "{{\"ph\": \"X\", {}, \"dur\": {}, \"args\": {{\"id\": {}, \"arg\": {}}}}}",
                common(e),
                us(e.dur_ns),
                e.id,
                e.arg
            ),
            EventKind::Instant => format!("{{\"ph\": \"i\", {}, \"s\": \"t\"}}", common(e)),
            EventKind::Counter => format!(
                "{{\"ph\": \"C\", {}, \"args\": {{\"value\": {}}}}}",
                common(e),
                e.dur_ns
            ),
            EventKind::AsyncBegin => {
                format!("{{\"ph\": \"b\", {}, \"id\": {}}}", common(e), e.id)
            }
            EventKind::AsyncEnd => format!(
                "{{\"ph\": \"e\", {}, \"id\": {}, \"args\": {{\"arg\": {}}}}}",
                common(e),
                e.id,
                e.arg
            ),
        };
        rows.push(row);
    }
    let mut out = String::from("{\"traceEvents\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("  ");
        out.push_str(row);
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadInfo;

    fn ev(kind: EventKind, name: &'static str, id: u64) -> Event {
        Event {
            kind,
            cat: "test",
            name,
            tid: 0,
            t0_ns: 1_500,
            dur_ns: 2_000,
            id,
            arg: 7,
        }
    }

    #[test]
    fn export_is_valid_json_with_all_phases() {
        let trace = Trace {
            events: vec![
                ev(EventKind::Span, "s", 0),
                ev(EventKind::Instant, "i", 0),
                ev(EventKind::Counter, "c", 0),
                ev(EventKind::AsyncBegin, "req", 9),
                ev(EventKind::AsyncEnd, "req", 9),
            ],
            threads: vec![ThreadInfo {
                tid: 0,
                name: "main".to_string(),
            }],
        };
        let json = chrome_trace_json(&trace);
        crate::json::validate(&json).unwrap();
        for ph in ["\"X\"", "\"i\"", "\"C\"", "\"b\"", "\"e\"", "\"M\""] {
            assert!(json.contains(&format!("\"ph\": {ph}")), "{json}");
        }
        // Span timestamps are µs: 1500 ns -> 1.500.
        assert!(json.contains("\"ts\": 1.500"), "{json}");
        assert!(json.contains("\"dur\": 2.000"), "{json}");
        assert!(json.contains("\"id\": 9"), "{json}");
    }

    #[test]
    fn hostile_names_escape_cleanly() {
        let trace = Trace {
            events: vec![Event {
                kind: EventKind::Span,
                cat: "test",
                name: crate::intern("we\"ird\\na\nme"),
                tid: 0,
                t0_ns: 0,
                dur_ns: 0,
                id: 0,
                arg: 0,
            }],
            threads: vec![],
        };
        crate::json::validate(&chrome_trace_json(&trace)).unwrap();
    }

    #[test]
    fn empty_trace_is_still_valid() {
        crate::json::validate(&chrome_trace_json(&Trace::default())).unwrap();
    }
}
