//! A minimal JSON parser/validator (the workspace is dependency-free).
//!
//! Exists so tests and tooling can check that the hand-built JSON the
//! repo emits (Chrome traces, metrics snapshots, profile reports)
//! actually parses, and poke at the parsed structure. It is a strict
//! recursive-descent parser over the full JSON grammar — not fast, not
//! incremental, and not meant for data interchange.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys are kept).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` for non-arrays).
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(elems) => Some(elems),
            _ => None,
        }
    }

    /// The value of a string (`None` for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value of a number (`None` for non-numbers).
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (rejects trailing garbage).
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

/// Check that `src` is valid JSON.
pub fn validate(src: &str) -> Result<(), String> {
    parse(src).map(|_| ())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(elems));
        }
        loop {
            self.skip_ws();
            elems.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(elems));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                            // Surrogates are accepted leniently as the
                            // replacement character; the repo never emits
                            // them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(format!("raw control byte 0x{c:02x} in string")),
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one multi-byte UTF-8 scalar; the leading
                    // byte encodes its width (the source is &str, so the
                    // sequence is well-formed).
                    let width = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + width])
                        .map_err(|e| e.to_string())?;
                    out.push_str(s);
                    self.pos += width;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b'0'..=b'9') = self.peek() {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        if let Some(b'e' | b'E') = self.peek() {
            self.pos += 1;
            if let Some(b'+' | b'-') = self.peek() {
                self.pos += 1;
            }
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": [true, false]}, "e": "x\ny"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn decodes_escapes() {
        let v = parse(r#""q\" b\\ uA t\t""#).unwrap();
        assert_eq!(v.as_str(), Some("q\" b\\ uA t\t"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, ]extra",
            "{\"a\" 1}",
            "\"unterminated",
            "01x",
            "[1 2]",
            "{\"a\": 1} trailing",
            "\"raw \u{1} control\"",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should not parse");
        }
        // A raw control byte inside a string literal is invalid JSON.
        assert!(validate("\"a\nb\"").is_err());
    }

    #[test]
    fn accepts_whitespace_everywhere() {
        validate(" { \"a\" : [ ] , \"b\" : { } } ").unwrap();
    }
}
