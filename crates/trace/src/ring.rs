//! Lock-free per-thread event ring buffers.
//!
//! Each recording thread owns one bounded [`RingBuffer`]; the producer
//! writes without locks or allocation, overwriting the oldest slot when
//! full. A collector thread drains concurrently: every slot is guarded
//! by a per-slot sequence counter (a seqlock), and because slot fields
//! are plain atomics a torn read is impossible at the language level —
//! the sequence check only decides whether the *combination* of fields
//! corresponds to one complete write, and mismatching reads are
//! discarded.
//!
//! The producer protocol per slot: bump `seq` to odd, write the fields,
//! store `seq` even (release). The consumer reads `seq` (acquire), the
//! fields (relaxed), an acquire fence, and `seq` again — accepting the
//! event only when both loads equal the exact even value expected for
//! that logical position, which also rejects slots recycled by a
//! producer that lapped the consumer.

use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

use crate::{Event, EventKind};

/// Events retained per thread (power of two). At ten words per slot this
/// is ~320 KiB per recording thread, bounded for the process lifetime.
pub(crate) const RING_CAPACITY: usize = 4096;

struct Slot {
    /// Seqlock: odd while the producer writes, even (`2 * writes`) when
    /// stable. The expected value for logical position `pos` is
    /// `2 * (pos / RING_CAPACITY + 1)`.
    seq: AtomicU64,
    kind: AtomicU64,
    cat_ptr: AtomicUsize,
    cat_len: AtomicUsize,
    name_ptr: AtomicUsize,
    name_len: AtomicUsize,
    t0_ns: AtomicU64,
    dur_ns: AtomicU64,
    id: AtomicU64,
    arg: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            cat_ptr: AtomicUsize::new(0),
            cat_len: AtomicUsize::new(0),
            name_ptr: AtomicUsize::new(0),
            name_len: AtomicUsize::new(0),
            t0_ns: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
            id: AtomicU64::new(0),
            arg: AtomicU64::new(0),
        }
    }
}

fn kind_to_u64(kind: EventKind) -> u64 {
    match kind {
        EventKind::Span => 0,
        EventKind::Instant => 1,
        EventKind::Counter => 2,
        EventKind::AsyncBegin => 3,
        EventKind::AsyncEnd => 4,
    }
}

fn kind_from_u64(v: u64) -> EventKind {
    match v {
        0 => EventKind::Span,
        1 => EventKind::Instant,
        2 => EventKind::Counter,
        3 => EventKind::AsyncBegin,
        _ => EventKind::AsyncEnd,
    }
}

/// One thread's bounded event buffer. The owning thread is the only
/// producer; any thread may drain (the collector serializes on the
/// global registry lock, so there is one consumer at a time).
pub(crate) struct RingBuffer {
    tid: u64,
    thread_name: String,
    /// Total events ever pushed; the live window is `head - RING_CAPACITY
    /// .. head` (producer-owned, stored after the slot write completes).
    head: AtomicU64,
    /// Everything before this position has been drained (consumer-owned).
    drained: AtomicU64,
    slots: Box<[Slot]>,
}

impl RingBuffer {
    fn new(tid: u64, thread_name: String) -> RingBuffer {
        RingBuffer {
            tid,
            thread_name,
            head: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            slots: (0..RING_CAPACITY).map(|_| Slot::new()).collect(),
        }
    }

    pub(crate) fn tid(&self) -> u64 {
        self.tid
    }

    pub(crate) fn thread_name(&self) -> &str {
        &self.thread_name
    }

    /// Record one event (producer side; called only by the owning
    /// thread).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn push(
        &self,
        kind: EventKind,
        cat: &'static str,
        name: &'static str,
        t0_ns: u64,
        dur_ns: u64,
        id: u64,
        arg: u64,
    ) {
        let pos = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(pos % RING_CAPACITY as u64) as usize];
        let seq = slot.seq.load(Ordering::Relaxed);
        // Mark the slot unstable before touching its fields...
        slot.seq.store(seq + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.kind.store(kind_to_u64(kind), Ordering::Relaxed);
        slot.cat_ptr.store(cat.as_ptr() as usize, Ordering::Relaxed);
        slot.cat_len.store(cat.len(), Ordering::Relaxed);
        slot.name_ptr
            .store(name.as_ptr() as usize, Ordering::Relaxed);
        slot.name_len.store(name.len(), Ordering::Relaxed);
        slot.t0_ns.store(t0_ns, Ordering::Relaxed);
        slot.dur_ns.store(dur_ns, Ordering::Relaxed);
        slot.id.store(id, Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
        // ...and stable (even) only after every field landed.
        slot.seq.store(seq + 2, Ordering::Release);
        self.head.store(pos + 1, Ordering::Release);
    }

    /// Drain undrained events into `out` (consumer side). Events the
    /// producer overwrote before this drain are skipped.
    pub(crate) fn drain_into(&self, out: &mut Vec<Event>) {
        let head = self.head.load(Ordering::Acquire);
        let cap = RING_CAPACITY as u64;
        let start = self
            .drained
            .load(Ordering::Relaxed)
            .max(head.saturating_sub(cap));
        for pos in start..head {
            let slot = &self.slots[(pos % cap) as usize];
            // The write for `pos` ended with this exact even value; any
            // other value means the producer lapped us (newer data) or is
            // mid-write — either way the event at `pos` is unrecoverable.
            let expected = 2 * (pos / cap + 1);
            if slot.seq.load(Ordering::Acquire) != expected {
                continue;
            }
            let kind = slot.kind.load(Ordering::Relaxed);
            let cat_ptr = slot.cat_ptr.load(Ordering::Relaxed);
            let cat_len = slot.cat_len.load(Ordering::Relaxed);
            let name_ptr = slot.name_ptr.load(Ordering::Relaxed);
            let name_len = slot.name_len.load(Ordering::Relaxed);
            let t0_ns = slot.t0_ns.load(Ordering::Relaxed);
            let dur_ns = slot.dur_ns.load(Ordering::Relaxed);
            let id = slot.id.load(Ordering::Relaxed);
            let arg = slot.arg.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != expected {
                continue;
            }
            // SAFETY: the seqlock validation above proves every field
            // belongs to one completed `push` of a `&'static str`'s
            // pointer and length — 'static data that is valid (and
            // immutable) for the process lifetime.
            let cat: &'static str = unsafe {
                std::str::from_utf8_unchecked(std::slice::from_raw_parts(
                    cat_ptr as *const u8,
                    cat_len,
                ))
            };
            let name: &'static str = unsafe {
                std::str::from_utf8_unchecked(std::slice::from_raw_parts(
                    name_ptr as *const u8,
                    name_len,
                ))
            };
            out.push(Event {
                kind: kind_from_u64(kind),
                cat,
                name,
                tid: self.tid,
                t0_ns,
                dur_ns,
                id,
                arg,
            });
        }
        self.drained.store(head, Ordering::Relaxed);
    }
}

/// Run `f` on the calling thread's buffer, creating and registering it
/// on first use. No-ops during thread teardown (the thread-local is
/// gone; losing a final event beats panicking in a destructor).
pub(crate) fn with_thread_buffer(f: impl FnOnce(&RingBuffer)) {
    thread_local! {
        static LOCAL: std::cell::OnceCell<Arc<RingBuffer>> = const { std::cell::OnceCell::new() };
    }
    let _ = LOCAL.try_with(|cell| {
        let buf = cell.get_or_init(|| {
            static NEXT_TID: Mutex<u64> = Mutex::new(0);
            let tid = {
                let mut next = NEXT_TID.lock().unwrap();
                let t = *next;
                *next += 1;
                t
            };
            let name = std::thread::current().name().unwrap_or("").to_string();
            let buf = Arc::new(RingBuffer::new(tid, name));
            crate::registry().lock().unwrap().push(Arc::clone(&buf));
            buf
        });
        f(buf);
    });
}
