//! Always-on structured tracing for the whole stack.
//!
//! Every layer of the engine — compilation, the pass pipeline, the VM,
//! the worker pool, the serving runtime — records [`Event`]s (spans,
//! instants, counters, async begin/end pairs) into a lock-free,
//! bounded, overwrite-oldest ring buffer owned by the recording thread.
//! Recording costs one relaxed atomic load when tracing is disabled
//! (the default) and a handful of relaxed atomic stores when enabled;
//! there are no locks, allocations, or syscalls on the hot path.
//!
//! A collector turns the recorded events into two artifacts:
//!
//! * [`Trace::to_chrome_json`] — Chrome trace-event JSON, loadable in
//!   [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`, with
//!   one track per thread and one async track per served request.
//! * [`Trace::profile`] — an aggregated per-phase report (call counts,
//!   total/self wall time) for "where did the time go" questions that
//!   do not need a timeline.
//!
//! ```
//! fir_trace::set_enabled(true);
//! {
//!     let _outer = fir_trace::span("demo", "outer");
//!     let _inner = fir_trace::span("demo", "inner");
//! }
//! let trace = fir_trace::drain();
//! fir_trace::set_enabled(false);
//! assert!(trace.events.len() >= 2);
//! fir_trace::json::validate(&trace.to_chrome_json()).unwrap();
//! ```
//!
//! Identifier payloads ([`next_id`], the `id`/`arg` fields) let separately
//! recorded events reference each other — e.g. a served request's
//! completion event carries the id of the batch span it rode in.

pub mod chrome;
pub mod json;
pub mod profile;
mod ring;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use ring::RingBuffer;

// ---------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------

/// The kind of one recorded [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed duration (`t0_ns` .. `t0_ns + dur_ns`) on one thread.
    Span,
    /// A point-in-time marker.
    Instant,
    /// A sampled counter value (`dur_ns` holds the value).
    Counter,
    /// The start of an async operation correlated by `id` (a served
    /// request's lifetime, spanning threads).
    AsyncBegin,
    /// The end of the async operation with the same `id`.
    AsyncEnd,
}

/// One recorded trace event. `cat`/`name` are interned (or literal)
/// static strings; timestamps are nanoseconds since the process trace
/// epoch (the first recorded event).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// What kind of event this is.
    pub kind: EventKind,
    /// Category: the layer that recorded it (`"compile"`, `"vm"`,
    /// `"serve"`, `"pool"`, ...).
    pub cat: &'static str,
    /// Event name within the category.
    pub name: &'static str,
    /// The recording thread (dense trace-local id, see
    /// [`ThreadInfo::tid`]).
    pub tid: u64,
    /// Start time, nanoseconds since the trace epoch.
    pub t0_ns: u64,
    /// Span duration in nanoseconds; counter value for
    /// [`EventKind::Counter`]; 0 otherwise.
    pub dur_ns: u64,
    /// Correlation id (async begin/end pairing, span identity); 0 when
    /// unused.
    pub id: u64,
    /// Auxiliary payload (e.g. the batch id a request completion rode
    /// in); 0 when unused.
    pub arg: u64,
}

/// One thread that recorded events: its dense trace id and its name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadInfo {
    /// Dense id assigned in registration order (matches [`Event::tid`]).
    pub tid: u64,
    /// The OS thread name at registration time (may be empty).
    pub name: String,
}

/// A drained collection of events plus the threads that recorded them.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events from every thread, sorted by start time.
    pub events: Vec<Event>,
    /// The recording threads.
    pub threads: Vec<ThreadInfo>,
}

impl Trace {
    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Chrome trace-event JSON for the whole trace (see
    /// [`chrome::chrome_trace_json`]).
    pub fn to_chrome_json(&self) -> String {
        chrome::chrome_trace_json(self)
    }

    /// Aggregate span events into a per-phase profile (see
    /// [`profile::Profile`]).
    pub fn profile(&self) -> profile::Profile {
        profile::Profile::from_trace(self)
    }

    /// Absorb a later [`drain`] batch: append its events (restoring the
    /// start-time sort) and union the thread lists. This is how a
    /// periodic collector accumulates one continuous trace from bounded
    /// ring buffers — drain faster than the busiest thread wraps and
    /// `extend` each batch onto the first.
    pub fn extend(&mut self, later: Trace) {
        for t in later.threads {
            if !self.threads.iter().any(|mine| mine.tid == t.tid) {
                self.threads.push(t);
            }
        }
        self.events.extend(later.events);
        // Batches are each sorted and largely consecutive in time, so the
        // stable merge sort hits its adaptive fast path.
        self.events.sort_by_key(|e| (e.t0_ns, e.tid));
        self.threads.sort_by_key(|t| t.tid);
    }
}

// ---------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn registry() -> &'static Mutex<Vec<Arc<RingBuffer>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<RingBuffer>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Turn recording on or off process-wide. Off (the default) reduces
/// every record call to one relaxed atomic load; already-recorded
/// events stay in their ring buffers until [`drain`]ed.
pub fn set_enabled(enabled: bool) {
    if enabled {
        // Pin the epoch before the first event so timestamps are small.
        epoch();
    }
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A fresh nonzero correlation id (process-wide, never reused). Used to
/// tie async begin/end pairs and cross-referencing events together.
pub fn next_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Intern a dynamic string, returning a `'static` reference. Interned
/// strings live for the process lifetime; callers pass bounded name
/// sets (function names, pass names), not per-event payloads.
pub fn intern(s: &str) -> &'static str {
    static INTERNED: OnceLock<Mutex<std::collections::HashSet<&'static str>>> = OnceLock::new();
    let set = INTERNED.get_or_init(|| Mutex::new(std::collections::HashSet::new()));
    let mut set = set.lock().unwrap();
    match set.get(s) {
        Some(interned) => interned,
        None => {
            let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
            set.insert(leaked);
            leaked
        }
    }
}

fn record(
    kind: EventKind,
    cat: &'static str,
    name: &'static str,
    t0: u64,
    dur: u64,
    id: u64,
    arg: u64,
) {
    ring::with_thread_buffer(|buf| buf.push(kind, cat, name, t0, dur, id, arg));
}

// ---------------------------------------------------------------------
// Recording API
// ---------------------------------------------------------------------

/// An RAII span: records one [`EventKind::Span`] covering its lifetime
/// when dropped. Inert (no timestamp taken) when tracing is disabled at
/// construction.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct SpanGuard {
    cat: &'static str,
    name: &'static str,
    id: u64,
    arg: u64,
    start_ns: u64,
    armed: bool,
}

impl SpanGuard {
    const INERT: SpanGuard = SpanGuard {
        cat: "",
        name: "",
        id: 0,
        arg: 0,
        start_ns: 0,
        armed: false,
    };

    /// Attach an auxiliary payload to the span event.
    pub fn with_arg(mut self, arg: u64) -> SpanGuard {
        self.arg = arg;
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed && enabled() {
            let dur = now_ns().saturating_sub(self.start_ns);
            record(
                EventKind::Span,
                self.cat,
                self.name,
                self.start_ns,
                dur,
                self.id,
                self.arg,
            );
        }
    }
}

/// Open a span with a literal name; it records when the guard drops.
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    span_with_id(cat, name, 0)
}

/// [`span`] with an explicit correlation id other events can reference.
pub fn span_with_id(cat: &'static str, name: &'static str, id: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard::INERT;
    }
    SpanGuard {
        cat,
        name,
        id,
        arg: 0,
        start_ns: now_ns(),
        armed: true,
    }
}

/// Open a span over a dynamic name (interned only when tracing is
/// enabled, so the disabled path stays allocation-free).
pub fn span_str(cat: &'static str, name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::INERT;
    }
    span_with_id(cat, intern(name), 0)
}

/// Record a point-in-time marker.
pub fn instant(cat: &'static str, name: &'static str) {
    if enabled() {
        record(EventKind::Instant, cat, name, now_ns(), 0, 0, 0);
    }
}

/// Record a sampled counter value (rendered as a counter track).
pub fn counter(cat: &'static str, name: &'static str, value: u64) {
    if enabled() {
        record(EventKind::Counter, cat, name, now_ns(), value, 0, 0);
    }
}

/// Record the start of an async operation correlated by `id` (events of
/// one id form a single track even across threads).
pub fn async_begin(cat: &'static str, name: &'static str, id: u64) {
    if enabled() {
        record(EventKind::AsyncBegin, cat, name, now_ns(), 0, id, 0);
    }
}

/// Record the end of the async operation `id`, with an auxiliary
/// payload (`arg`) cross-referencing another event's id (0 when
/// unused).
pub fn async_end(cat: &'static str, name: &'static str, id: u64, arg: u64) {
    if enabled() {
        record(EventKind::AsyncEnd, cat, name, now_ns(), 0, id, arg);
    }
}

/// Drain every thread's ring buffer into one [`Trace`], sorted by start
/// time. Draining consumes: a second drain returns only events recorded
/// since. Events overwritten before the drain (a thread outran its
/// bounded buffer) are silently dropped — tracing is an observation
/// tool, not a reliable log.
pub fn drain() -> Trace {
    let buffers: Vec<Arc<RingBuffer>> = registry().lock().unwrap().clone();
    let mut events = Vec::new();
    let mut threads = Vec::new();
    for buf in &buffers {
        buf.drain_into(&mut events);
        threads.push(ThreadInfo {
            tid: buf.tid(),
            name: buf.thread_name().to_string(),
        });
    }
    events.sort_by_key(|e| (e.t0_ns, e.tid));
    threads.sort_by_key(|t| t.tid);
    Trace { events, threads }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Recording is process-global state; tests that enable/drain must
    /// not interleave.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _g = serial();
        set_enabled(false);
        drain();
        let _s = span("test", "ignored");
        instant("test", "ignored");
        counter("test", "ignored", 1);
        drop(_s);
        assert!(drain().is_empty());
    }

    #[test]
    fn spans_nest_and_drain_in_time_order() {
        let _g = serial();
        set_enabled(false);
        drain();
        set_enabled(true);
        {
            let _outer = span("test", "outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("test", "inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        set_enabled(false);
        let trace = drain();
        let spans: Vec<&Event> = trace
            .events
            .iter()
            .filter(|e| e.cat == "test" && e.kind == EventKind::Span)
            .collect();
        assert_eq!(spans.len(), 2);
        // Inner closed first but outer *started* first; drain sorts by t0.
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[1].name, "inner");
        assert!(spans[0].t0_ns <= spans[1].t0_ns);
        assert!(spans[0].dur_ns >= spans[1].dur_ns);
        // The inner span is contained in the outer.
        assert!(spans[1].t0_ns + spans[1].dur_ns <= spans[0].t0_ns + spans[0].dur_ns);
    }

    #[test]
    fn counters_instants_and_async_pairs_round_trip() {
        let _g = serial();
        set_enabled(false);
        drain();
        set_enabled(true);
        let id = next_id();
        async_begin("test", "req", id);
        counter("test", "depth", 7);
        instant("test", "mark");
        async_end("test", "req", id, 42);
        set_enabled(false);
        let trace = drain();
        let find = |k: EventKind| trace.events.iter().find(|e| e.kind == k).unwrap();
        assert_eq!(find(EventKind::Counter).dur_ns, 7);
        assert_eq!(find(EventKind::AsyncBegin).id, id);
        let end = find(EventKind::AsyncEnd);
        assert_eq!((end.id, end.arg), (id, 42));
    }

    #[test]
    fn multi_thread_events_carry_distinct_tids() {
        let _g = serial();
        set_enabled(false);
        drain();
        set_enabled(true);
        instant("test", "main-thread");
        std::thread::spawn(|| instant("test", "other-thread"))
            .join()
            .unwrap();
        set_enabled(false);
        let trace = drain();
        let main_tid = trace
            .events
            .iter()
            .find(|e| e.name == "main-thread")
            .unwrap()
            .tid;
        let other_tid = trace
            .events
            .iter()
            .find(|e| e.name == "other-thread")
            .unwrap()
            .tid;
        assert_ne!(main_tid, other_tid);
        assert!(trace.threads.iter().any(|t| t.tid == main_tid));
        assert!(trace.threads.iter().any(|t| t.tid == other_tid));
    }

    #[test]
    fn overflow_keeps_the_newest_events() {
        let _g = serial();
        set_enabled(false);
        drain();
        set_enabled(true);
        let total = ring::RING_CAPACITY + 100;
        for i in 0..total {
            counter("test", "seq", i as u64);
        }
        set_enabled(false);
        let trace = drain();
        let counters: Vec<u64> = trace
            .events
            .iter()
            .filter(|e| e.name == "seq")
            .map(|e| e.dur_ns)
            .collect();
        assert_eq!(counters.len(), ring::RING_CAPACITY);
        // Overwrite-oldest: the survivors are exactly the newest window.
        assert_eq!(counters[0], 100);
        assert_eq!(*counters.last().unwrap(), total as u64 - 1);
    }

    #[test]
    fn periodic_drains_extend_into_one_trace() {
        let _g = serial();
        set_enabled(false);
        drain();
        set_enabled(true);
        counter("test", "tick", 1);
        let mut acc = drain();
        counter("test", "tick", 2);
        std::thread::spawn(|| counter("test", "tick", 3))
            .join()
            .unwrap();
        set_enabled(false);
        acc.extend(drain());
        let ticks: Vec<u64> = acc
            .events
            .iter()
            .filter(|e| e.name == "tick")
            .map(|e| e.dur_ns)
            .collect();
        assert_eq!(ticks, vec![1, 2, 3], "merged batches stay time-sorted");
        // Thread lists union without duplicating the first batch's entry.
        let tids: Vec<u64> = acc.threads.iter().map(|t| t.tid).collect();
        let mut deduped = tids.clone();
        deduped.dedup();
        assert_eq!(tids, deduped);
        assert!(acc.threads.len() >= 2);
    }

    #[test]
    fn interning_deduplicates() {
        let a = intern("some-dynamic-name");
        let b = intern(&format!("some-{}-name", "dynamic"));
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = next_id();
        let b = next_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
