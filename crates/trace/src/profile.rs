//! Aggregated per-phase profiles.
//!
//! Collapses a drained trace's span events into one row per
//! `(category, name)` phase: call count, total wall time, *self* time
//! (total minus the time spent in spans nested inside it on the same
//! thread), and the longest single occurrence. Self time is what makes
//! the report additive — summing the self column over all rows
//! approximates the traced wall time without double-counting a
//! `compile` span's pipeline, or a `vm` span's kernels.

use std::collections::BTreeMap;

use crate::{EventKind, Trace};

/// One aggregated phase: every span with the same `(cat, name)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    /// Span category.
    pub cat: &'static str,
    /// Span name.
    pub name: &'static str,
    /// Number of spans aggregated.
    pub count: u64,
    /// Summed wall time, nanoseconds.
    pub total_ns: u64,
    /// Summed wall time minus time in nested spans, nanoseconds.
    pub self_ns: u64,
    /// The longest single span, nanoseconds.
    pub max_ns: u64,
}

/// A per-phase aggregation of a [`Trace`], sorted by self time
/// (descending).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// One row per `(cat, name)`, most self time first.
    pub rows: Vec<ProfileRow>,
}

impl Profile {
    /// Aggregate the span events of `trace`.
    pub fn from_trace(trace: &Trace) -> Profile {
        // Reconstruct nesting per thread: spans sorted by start time
        // (ties: longer first, so an enclosing span precedes the spans
        // it contains), swept with a stack of open intervals.
        let mut by_thread: BTreeMap<u64, Vec<(u64, u64, &'static str, &'static str)>> =
            BTreeMap::new();
        for e in &trace.events {
            if e.kind == EventKind::Span {
                by_thread
                    .entry(e.tid)
                    .or_default()
                    .push((e.t0_ns, e.dur_ns, e.cat, e.name));
            }
        }
        let mut agg: BTreeMap<(&'static str, &'static str), ProfileRow> = BTreeMap::new();
        for (_, mut spans) in by_thread {
            spans.sort_by_key(|(t0, dur, _, _)| (*t0, u64::MAX - *dur));
            // Stack of (end_ns, child_ns accumulated, cat, name).
            let mut stack: Vec<(u64, u64, &'static str, &'static str)> = Vec::new();
            for (t0, dur, cat, name) in spans {
                let end = t0 + dur;
                while let Some(&(open_end, _, _, _)) = stack.last() {
                    if open_end <= t0 {
                        close(&mut stack, &mut agg);
                    } else {
                        break;
                    }
                }
                // Count this span toward its parent's child time.
                if let Some(top) = stack.last_mut() {
                    top.1 += dur;
                }
                let row = agg.entry((cat, name)).or_insert(ProfileRow {
                    cat,
                    name,
                    count: 0,
                    total_ns: 0,
                    self_ns: 0,
                    max_ns: 0,
                });
                row.count += 1;
                row.total_ns += dur;
                row.self_ns += dur;
                row.max_ns = row.max_ns.max(dur);
                stack.push((end, 0, cat, name));
            }
            while !stack.is_empty() {
                close(&mut stack, &mut agg);
            }
        }
        let mut rows: Vec<ProfileRow> = agg.into_values().collect();
        rows.sort_by_key(|r| u64::MAX - r.self_ns);
        Profile { rows }
    }

    /// The row for `(cat, name)`, if any span recorded it.
    pub fn row(&self, cat: &str, name: &str) -> Option<&ProfileRow> {
        self.rows.iter().find(|r| r.cat == cat && r.name == name)
    }

    /// Serialize to JSON (hand-rolled; the workspace is dependency-free).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"profile\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"cat\": \"{}\", \"name\": \"{}\", \"count\": {}, \"total_ms\": {:.3}, \
                 \"self_ms\": {:.3}, \"max_ms\": {:.3}}}{}",
                crate::chrome::escape(r.cat),
                crate::chrome::escape(r.name),
                r.count,
                r.total_ns as f64 / 1e6,
                r.self_ns as f64 / 1e6,
                r.max_ns as f64 / 1e6,
                if i + 1 < self.rows.len() { ",\n" } else { "\n" }
            ));
        }
        out.push_str("]}\n");
        out
    }
}

/// Pop the top open span and charge its nested-child time against its
/// aggregate row's self time.
fn close(
    stack: &mut Vec<(u64, u64, &'static str, &'static str)>,
    agg: &mut BTreeMap<(&'static str, &'static str), ProfileRow>,
) {
    let (_, child_ns, cat, name) = stack.pop().expect("close of empty stack");
    if let Some(row) = agg.get_mut(&(cat, name)) {
        row.self_ns = row.self_ns.saturating_sub(child_ns);
    }
}

impl std::fmt::Display for Profile {
    /// An aligned table, widest self time first:
    ///
    /// ```text
    /// phase                                count     total      self       max
    /// vm/gmm_objective                        12   34.50ms   20.10ms    4.20ms
    /// ```
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let width = self
            .rows
            .iter()
            .map(|r| r.cat.len() + r.name.len() + 1)
            .max()
            .unwrap_or(5)
            .max("phase".len());
        writeln!(
            f,
            "{:<width$}  {:>8}  {:>10}  {:>10}  {:>10}",
            "phase", "count", "total", "self", "max"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<width$}  {:>8}  {:>10}  {:>10}  {:>10}",
                format!("{}/{}", r.cat, r.name),
                r.count,
                fmt_ms(r.total_ns),
                fmt_ms(r.self_ns),
                fmt_ms(r.max_ns),
            )?;
        }
        Ok(())
    }
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.2}ms", ns as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Event;

    fn span(tid: u64, t0: u64, dur: u64, name: &'static str) -> Event {
        Event {
            kind: EventKind::Span,
            cat: "t",
            name,
            tid,
            t0_ns: t0,
            dur_ns: dur,
            id: 0,
            arg: 0,
        }
    }

    #[test]
    fn self_time_subtracts_nested_children() {
        // outer [0, 100) contains inner [10, 40) and inner [50, 70).
        let trace = Trace {
            events: vec![
                span(0, 0, 100, "outer"),
                span(0, 10, 30, "inner"),
                span(0, 50, 20, "inner"),
            ],
            threads: vec![],
        };
        let p = trace.profile();
        let outer = p.row("t", "outer").unwrap();
        assert_eq!((outer.count, outer.total_ns, outer.self_ns), (1, 100, 50));
        let inner = p.row("t", "inner").unwrap();
        assert_eq!((inner.count, inner.total_ns, inner.self_ns), (2, 50, 50));
        assert_eq!(inner.max_ns, 30);
        // Sorted by self time descending: ties broken stably; both 50.
        assert_eq!(p.rows.len(), 2);
    }

    #[test]
    fn sibling_threads_do_not_nest() {
        // Identical intervals on different threads are parallel, not
        // nested: no self-time subtraction across threads.
        let trace = Trace {
            events: vec![span(0, 0, 100, "a"), span(1, 0, 100, "b")],
            threads: vec![],
        };
        let p = trace.profile();
        assert_eq!(p.row("t", "a").unwrap().self_ns, 100);
        assert_eq!(p.row("t", "b").unwrap().self_ns, 100);
    }

    #[test]
    fn deep_nesting_charges_each_parent_once() {
        // a [0,100) > b [10,90) > c [20,50): a self 20, b self 50, c 30.
        let trace = Trace {
            events: vec![
                span(0, 0, 100, "a"),
                span(0, 10, 80, "b"),
                span(0, 20, 30, "c"),
            ],
            threads: vec![],
        };
        let p = trace.profile();
        assert_eq!(p.row("t", "a").unwrap().self_ns, 20);
        assert_eq!(p.row("t", "b").unwrap().self_ns, 50);
        assert_eq!(p.row("t", "c").unwrap().self_ns, 30);
        // Self times sum to the wall time of the outermost span.
        let total: u64 = p.rows.iter().map(|r| r.self_ns).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn json_and_display_render() {
        let trace = Trace {
            events: vec![span(0, 0, 2_000_000, "phase")],
            threads: vec![],
        };
        let p = trace.profile();
        crate::json::validate(&p.to_json()).unwrap();
        let text = p.to_string();
        assert!(text.contains("t/phase"), "{text}");
        assert!(text.contains("2.00ms"), "{text}");
    }

    #[test]
    fn empty_profile_is_well_formed() {
        let p = Trace::default().profile();
        assert!(p.rows.is_empty());
        crate::json::validate(&p.to_json()).unwrap();
    }
}
