//! Accumulators: shared, atomically-updated `f64` buffers.
//!
//! Accumulators are the runtime realization of the paper's `withacc`/`upd`
//! constructs (§5.4): a write-only view of an array into which many parallel
//! threads may add contributions. On GPUs these become `atomicAdd`; here we
//! implement the same semantics with a CAS loop over the `f64` bit pattern
//! stored in an `AtomicU64`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::value::Array;

/// The shared buffer behind an accumulator.
#[derive(Debug)]
struct AccBuf {
    shape: Vec<usize>,
    cells: Vec<AtomicU64>,
}

/// A handle on an accumulator. Cloning the handle shares the buffer, which
/// is exactly the behaviour needed when an accumulator is passed (as "an
/// array of accumulators") to every iteration of a `map`.
#[derive(Debug, Clone)]
pub struct Accum {
    buf: Arc<AccBuf>,
}

impl Accum {
    /// Create an accumulator initialized with the contents of an `f64` array.
    pub fn from_array(a: &Array) -> Accum {
        let cells = a
            .f64s()
            .iter()
            .map(|x| AtomicU64::new(x.to_bits()))
            .collect();
        Accum {
            buf: Arc::new(AccBuf {
                shape: a.shape.clone(),
                cells,
            }),
        }
    }

    /// Create a zero-initialized accumulator of the given shape.
    pub fn zeros(shape: Vec<usize>) -> Accum {
        let n: usize = shape.iter().product();
        let cells = (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect();
        Accum {
            buf: Arc::new(AccBuf { shape, cells }),
        }
    }

    /// The shape of the underlying array.
    pub fn shape(&self) -> &[usize] {
        &self.buf.shape
    }

    /// Number of scalar cells.
    pub fn len(&self) -> usize {
        self.buf.cells.len()
    }

    /// True when the accumulator has no cells.
    pub fn is_empty(&self) -> bool {
        self.buf.cells.is_empty()
    }

    /// Atomically add `v` to the cell at flat offset `off`.
    pub fn add_at(&self, off: usize, v: f64) {
        if v == 0.0 {
            return;
        }
        let cell = &self.buf.cells[off];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Atomically add a contiguous slice starting at flat offset `off`
    /// (vectorized accumulation of a sub-array contribution).
    pub fn add_slice(&self, off: usize, vs: &[f64]) {
        for (k, v) in vs.iter().enumerate() {
            self.add_at(off + k, *v);
        }
    }

    /// The flat offset corresponding to a (partial) multi-dimensional index,
    /// together with the number of scalars it addresses.
    pub fn offset_of(&self, idx: &[usize]) -> (usize, usize) {
        assert!(
            idx.len() <= self.buf.shape.len(),
            "too many indices for accumulator"
        );
        let mut off = 0;
        let mut stride: usize = self.buf.shape.iter().product();
        for (k, &i) in idx.iter().enumerate() {
            stride /= self.buf.shape[k];
            off += i * stride;
        }
        (off, stride)
    }

    /// Whether a (partial) index is within bounds.
    pub fn in_bounds(&self, idx: &[usize]) -> bool {
        idx.iter().zip(&self.buf.shape).all(|(i, d)| i < d)
    }

    /// Snapshot the accumulator into an ordinary array (the end of its
    /// lifetime in `withacc`).
    pub fn to_array(&self) -> Array {
        let data: Vec<f64> = self
            .buf
            .cells
            .iter()
            .map(|c| f64::from_bits(c.load(Ordering::Relaxed)))
            .collect();
        Array::from_f64(self.buf.shape.clone(), data)
    }

    /// Whether two handles share the same buffer.
    pub fn same_buffer(&self, other: &Accum) -> bool {
        Arc::ptr_eq(&self.buf, &other.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_snapshot() {
        let acc = Accum::zeros(vec![4]);
        acc.add_at(1, 2.5);
        acc.add_at(1, 0.5);
        acc.add_at(3, -1.0);
        assert_eq!(acc.to_array().f64s(), &[0.0, 3.0, 0.0, -1.0]);
    }

    #[test]
    fn from_array_preserves_contents() {
        let a = Array::vec_f64(vec![1.0, 2.0]);
        let acc = Accum::from_array(&a);
        acc.add_at(0, 1.0);
        assert_eq!(acc.to_array().f64s(), &[2.0, 2.0]);
    }

    #[test]
    fn partial_index_offsets() {
        let acc = Accum::zeros(vec![2, 3]);
        let (off, n) = acc.offset_of(&[1]);
        assert_eq!((off, n), (3, 3));
        let (off, n) = acc.offset_of(&[1, 2]);
        assert_eq!((off, n), (5, 1));
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let acc = Accum::zeros(vec![1]);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let acc = acc.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        acc.add_at(0, 1.0);
                    }
                });
            }
        });
        assert_eq!(acc.to_array().f64s()[0], 8000.0);
    }

    #[test]
    fn clones_share_the_buffer() {
        let acc = Accum::zeros(vec![2]);
        let acc2 = acc.clone();
        acc2.add_at(0, 5.0);
        assert!(acc.same_buffer(&acc2));
        assert_eq!(acc.to_array().f64s()[0], 5.0);
    }
}
