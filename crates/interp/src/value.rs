//! Runtime values: scalars, regular multi-dimensional arrays and
//! accumulators.
//!
//! Arrays are stored flat in row-major order behind an `Arc`, giving cheap
//! clones and copy-on-write in-place updates (`Arc::make_mut`), which mirrors
//! Futhark's uniqueness-typed in-place updates closely enough for
//! benchmarking purposes.

use std::sync::Arc;

use fir::types::{ScalarType, Type};

use crate::acc::Accum;
use crate::arena;

/// The flat element storage of an array.
#[derive(Debug, Clone, PartialEq)]
pub enum Data {
    F64(Arc<Vec<f64>>),
    I64(Arc<Vec<i64>>),
    Bool(Arc<Vec<bool>>),
}

impl Data {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            Data::F64(v) => v.len(),
            Data::I64(v) => v.len(),
            Data::Bool(v) => v.len(),
        }
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The element type.
    pub fn elem(&self) -> ScalarType {
        match self {
            Data::F64(_) => ScalarType::F64,
            Data::I64(_) => ScalarType::I64,
            Data::Bool(_) => ScalarType::Bool,
        }
    }
}

/// A regular (rectangular) multi-dimensional array.
#[derive(Debug, Clone, PartialEq)]
pub struct Array {
    pub shape: Vec<usize>,
    pub data: Data,
}

impl Array {
    /// Construct an `f64` array; panics if `data.len() != product(shape)`.
    pub fn from_f64(shape: Vec<usize>, data: Vec<f64>) -> Array {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape/data mismatch"
        );
        Array {
            shape,
            data: Data::F64(arena::publish_f64(data)),
        }
    }

    /// Construct an `i64` array.
    pub fn from_i64(shape: Vec<usize>, data: Vec<i64>) -> Array {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape/data mismatch"
        );
        Array {
            shape,
            data: Data::I64(arena::publish_i64(data)),
        }
    }

    /// Construct a `bool` array.
    pub fn from_bool(shape: Vec<usize>, data: Vec<bool>) -> Array {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape/data mismatch"
        );
        Array {
            shape,
            data: Data::Bool(arena::publish_bool(data)),
        }
    }

    /// A rank-1 `f64` array.
    pub fn vec_f64(data: Vec<f64>) -> Array {
        let n = data.len();
        Array::from_f64(vec![n], data)
    }

    /// A rank-1 `i64` array.
    pub fn vec_i64(data: Vec<i64>) -> Array {
        let n = data.len();
        Array::from_i64(vec![n], data)
    }

    /// An array of zeros of the given element type and shape.
    pub fn zeros(elem: ScalarType, shape: Vec<usize>) -> Array {
        let n: usize = shape.iter().product();
        let data = match elem {
            ScalarType::F64 => {
                let mut v = arena::take_f64(n);
                v.resize(n, 0.0);
                Data::F64(arena::publish_f64(v))
            }
            ScalarType::I64 => {
                let mut v = arena::take_i64(n);
                v.resize(n, 0);
                Data::I64(arena::publish_i64(v))
            }
            ScalarType::Bool => {
                let mut v = arena::take_bool(n);
                v.resize(n, false);
                Data::Bool(arena::publish_bool(v))
            }
        };
        Array { shape, data }
    }

    /// The rank of the array.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// The outer length.
    pub fn len(&self) -> usize {
        self.shape.first().copied().unwrap_or(0)
    }

    /// True when the outer dimension is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element type.
    pub fn elem(&self) -> ScalarType {
        self.data.elem()
    }

    /// Number of scalars in one outer element.
    pub fn stride(&self) -> usize {
        self.shape.iter().skip(1).product()
    }

    /// The `f64` data; panics on other element types.
    pub fn f64s(&self) -> &[f64] {
        match &self.data {
            Data::F64(v) => v,
            other => panic!("expected f64 array, got {:?}", other.elem()),
        }
    }

    /// The `i64` data; panics on other element types.
    pub fn i64s(&self) -> &[i64] {
        match &self.data {
            Data::I64(v) => v,
            other => panic!("expected i64 array, got {:?}", other.elem()),
        }
    }

    /// The `bool` data; panics on other element types.
    pub fn bools(&self) -> &[bool] {
        match &self.data {
            Data::Bool(v) => v,
            other => panic!("expected bool array, got {:?}", other.elem()),
        }
    }

    /// Mutable `f64` data (copy-on-write; an arena-lent reference that is
    /// the only other owner is dropped first so the write is in-place).
    pub fn f64s_mut(&mut self) -> &mut Vec<f64> {
        match &mut self.data {
            Data::F64(v) => {
                arena::disown_f64(v);
                Arc::make_mut(v)
            }
            other => panic!("expected f64 array, got {:?}", other.elem()),
        }
    }

    /// Mutable `i64` data (copy-on-write).
    pub fn i64s_mut(&mut self) -> &mut Vec<i64> {
        match &mut self.data {
            Data::I64(v) => {
                arena::disown_i64(v);
                Arc::make_mut(v)
            }
            other => panic!("expected i64 array, got {:?}", other.elem()),
        }
    }

    /// Mutable `bool` data (copy-on-write).
    pub fn bools_mut(&mut self) -> &mut Vec<bool> {
        match &mut self.data {
            Data::Bool(v) => {
                arena::disown_bool(v);
                Arc::make_mut(v)
            }
            other => panic!("expected bool array, got {:?}", other.elem()),
        }
    }

    /// The flat offset and sub-shape selected by `idx` (partial or full
    /// indexing along the outermost dimensions).
    pub fn offset_of(&self, idx: &[usize]) -> (usize, Vec<usize>) {
        assert!(idx.len() <= self.rank(), "too many indices");
        let mut off = 0;
        let mut stride: usize = self.shape.iter().product();
        for (k, &i) in idx.iter().enumerate() {
            assert!(
                i < self.shape[k],
                "index {i} out of bounds for dim of size {}",
                self.shape[k]
            );
            stride /= self.shape[k];
            off += i * stride;
        }
        (off, self.shape[idx.len()..].to_vec())
    }

    /// Index with `idx`, returning a scalar or sub-array value.
    pub fn index(&self, idx: &[usize]) -> Value {
        let (off, sub_shape) = self.offset_of(idx);
        if sub_shape.is_empty() {
            match &self.data {
                Data::F64(v) => Value::F64(v[off]),
                Data::I64(v) => Value::I64(v[off]),
                Data::Bool(v) => Value::Bool(v[off]),
            }
        } else {
            let n: usize = sub_shape.iter().product();
            fn slice<T: Copy>(src: &[T], take: impl Fn(usize) -> Vec<T>) -> Vec<T> {
                let mut out = take(src.len());
                out.extend_from_slice(src);
                out
            }
            let data = match &self.data {
                Data::F64(v) => {
                    Data::F64(arena::publish_f64(slice(&v[off..off + n], arena::take_f64)))
                }
                Data::I64(v) => {
                    Data::I64(arena::publish_i64(slice(&v[off..off + n], arena::take_i64)))
                }
                Data::Bool(v) => Data::Bool(arena::publish_bool(slice(
                    &v[off..off + n],
                    arena::take_bool,
                ))),
            };
            Value::Arr(Array {
                shape: sub_shape,
                data,
            })
        }
    }

    /// Write `val` (a scalar or sub-array) at `idx`, in place.
    pub fn write(&mut self, idx: &[usize], val: &Value) {
        let (off, sub_shape) = self.offset_of(idx);
        let n: usize = sub_shape.iter().product();
        match (&mut self.data, val) {
            (Data::F64(v), Value::F64(x)) => {
                arena::disown_f64(v);
                Arc::make_mut(v)[off] = *x;
            }
            (Data::I64(v), Value::I64(x)) => {
                arena::disown_i64(v);
                Arc::make_mut(v)[off] = *x;
            }
            (Data::Bool(v), Value::Bool(x)) => {
                arena::disown_bool(v);
                Arc::make_mut(v)[off] = *x;
            }
            (Data::F64(v), Value::Arr(a)) => {
                arena::disown_f64(v);
                Arc::make_mut(v)[off..off + n].copy_from_slice(a.f64s())
            }
            (Data::I64(v), Value::Arr(a)) => {
                arena::disown_i64(v);
                Arc::make_mut(v)[off..off + n].copy_from_slice(a.i64s())
            }
            (Data::Bool(v), Value::Arr(a)) => {
                arena::disown_bool(v);
                Arc::make_mut(v)[off..off + n].copy_from_slice(a.bools())
            }
            (d, v) => panic!("write: element type mismatch {:?} <- {:?}", d.elem(), v),
        }
    }

    /// Reverse along the outer dimension.
    pub fn reverse(&self) -> Array {
        let n = self.len();
        let stride = self.stride();
        fn rev<T: Copy>(
            src: &[T],
            n: usize,
            stride: usize,
            take: impl Fn(usize) -> Vec<T>,
        ) -> Vec<T> {
            let mut out = take(src.len());
            for i in (0..n).rev() {
                out.extend_from_slice(&src[i * stride..(i + 1) * stride]);
            }
            out
        }
        let data = match &self.data {
            Data::F64(v) => Data::F64(arena::publish_f64(rev(v, n, stride, arena::take_f64))),
            Data::I64(v) => Data::I64(arena::publish_i64(rev(v, n, stride, arena::take_i64))),
            Data::Bool(v) => Data::Bool(arena::publish_bool(rev(v, n, stride, arena::take_bool))),
        };
        Array {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Stack `n` equally-shaped element values into an array with outer
    /// length `n`. All elements must have the same type and shape.
    pub fn stack(elems: &[Value]) -> Array {
        assert!(!elems.is_empty(), "Array::stack of zero elements");
        match &elems[0] {
            Value::F64(_) => {
                let data: Vec<f64> = elems.iter().map(|v| v.as_f64()).collect();
                Array::vec_f64(data)
            }
            Value::I64(_) => {
                let data: Vec<i64> = elems.iter().map(|v| v.as_i64()).collect();
                Array::vec_i64(data)
            }
            Value::Bool(_) => {
                let data: Vec<bool> = elems.iter().map(|v| v.as_bool()).collect();
                Array::from_bool(vec![elems.len()], data)
            }
            Value::Arr(a0) => {
                let mut shape = vec![elems.len()];
                shape.extend_from_slice(&a0.shape);
                match &a0.data {
                    Data::F64(_) => {
                        let mut data = arena::take_f64(shape.iter().product());
                        for v in elems {
                            data.extend_from_slice(v.as_arr().f64s());
                        }
                        Array {
                            shape,
                            data: Data::F64(arena::publish_f64(data)),
                        }
                    }
                    Data::I64(_) => {
                        let mut data = arena::take_i64(shape.iter().product());
                        for v in elems {
                            data.extend_from_slice(v.as_arr().i64s());
                        }
                        Array {
                            shape,
                            data: Data::I64(arena::publish_i64(data)),
                        }
                    }
                    Data::Bool(_) => {
                        let mut data = arena::take_bool(shape.iter().product());
                        for v in elems {
                            data.extend_from_slice(v.as_arr().bools());
                        }
                        Array {
                            shape,
                            data: Data::Bool(arena::publish_bool(data)),
                        }
                    }
                }
            }
            Value::Acc(_) => panic!("Array::stack of accumulators"),
        }
    }
}

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    F64(f64),
    I64(i64),
    Bool(bool),
    Arr(Array),
    /// An accumulator handle (shared, atomically updated).
    Acc(Accum),
}

impl Value {
    /// The `f64` payload; panics otherwise.
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::F64(x) => *x,
            other => panic!("expected f64 value, got {other:?}"),
        }
    }

    /// The `i64` payload; panics otherwise.
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::I64(x) => *x,
            other => panic!("expected i64 value, got {other:?}"),
        }
    }

    /// The `bool` payload; panics otherwise.
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(x) => *x,
            other => panic!("expected bool value, got {other:?}"),
        }
    }

    /// The array payload; panics otherwise.
    pub fn as_arr(&self) -> &Array {
        match self {
            Value::Arr(a) => a,
            other => panic!("expected array value, got {other:?}"),
        }
    }

    /// The array payload by value; panics otherwise.
    pub fn into_arr(self) -> Array {
        match self {
            Value::Arr(a) => a,
            other => panic!("expected array value, got {other:?}"),
        }
    }

    /// The accumulator payload; panics otherwise.
    pub fn as_acc(&self) -> &Accum {
        match self {
            Value::Acc(a) => a,
            other => panic!("expected accumulator value, got {other:?}"),
        }
    }

    /// The type of this value (array ranks are taken from the shape).
    pub fn ty(&self) -> Type {
        match self {
            Value::F64(_) => Type::F64,
            Value::I64(_) => Type::I64,
            Value::Bool(_) => Type::BOOL,
            Value::Arr(a) => Type::Array {
                elem: a.elem(),
                rank: a.rank(),
            },
            Value::Acc(a) => Type::Acc {
                elem: ScalarType::F64,
                rank: a.shape().len(),
            },
        }
    }

    /// A zero value of the given type and (for arrays) shape.
    pub fn zero_of(ty: &Type, shape: &[usize]) -> Value {
        match ty {
            Type::Scalar(ScalarType::F64) => Value::F64(0.0),
            Type::Scalar(ScalarType::I64) => Value::I64(0),
            Type::Scalar(ScalarType::Bool) => Value::Bool(false),
            Type::Array { elem, rank } => {
                assert_eq!(shape.len(), *rank, "zero_of: shape rank mismatch");
                Value::Arr(Array::zeros(*elem, shape.to_vec()))
            }
            Type::Acc { .. } => panic!("zero_of accumulator"),
        }
    }

    /// A zero value with the same type and shape as `self`.
    pub fn zero_like(&self) -> Value {
        match self {
            Value::F64(_) => Value::F64(0.0),
            Value::I64(_) => Value::I64(0),
            Value::Bool(_) => Value::Bool(false),
            Value::Arr(a) => Value::Arr(Array::zeros(a.elem(), a.shape.clone())),
            Value::Acc(_) => panic!("zero_like of accumulator"),
        }
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::F64(x)
    }
}

impl From<i64> for Value {
    fn from(x: i64) -> Value {
        Value::I64(x)
    }
}

impl From<bool> for Value {
    fn from(x: bool) -> Value {
        Value::Bool(x)
    }
}

impl From<Array> for Value {
    fn from(a: Array) -> Value {
        Value::Arr(a)
    }
}

impl From<Vec<f64>> for Value {
    fn from(v: Vec<f64>) -> Value {
        Value::Arr(Array::vec_f64(v))
    }
}

impl From<Vec<i64>> for Value {
    fn from(v: Vec<i64>) -> Value {
        Value::Arr(Array::vec_i64(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_full_and_partial() {
        let a = Array::from_f64(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.index(&[1, 2]).as_f64(), 6.0);
        let row = a.index(&[0]).into_arr();
        assert_eq!(row.shape, vec![3]);
        assert_eq!(row.f64s(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn write_scalar_and_row() {
        let mut a = Array::zeros(ScalarType::F64, vec![2, 2]);
        a.write(&[0, 1], &Value::F64(5.0));
        a.write(&[1], &Value::Arr(Array::vec_f64(vec![7.0, 8.0])));
        assert_eq!(a.f64s(), &[0.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn copy_on_write_preserves_original() {
        let a = Array::vec_f64(vec![1.0, 2.0]);
        let mut b = a.clone();
        b.f64s_mut()[0] = 9.0;
        assert_eq!(a.f64s(), &[1.0, 2.0]);
        assert_eq!(b.f64s(), &[9.0, 2.0]);
    }

    #[test]
    fn stack_scalars_and_rows() {
        let s = Array::stack(&[Value::F64(1.0), Value::F64(2.0)]);
        assert_eq!(s.shape, vec![2]);
        let rows = Array::stack(&[
            Value::Arr(Array::vec_f64(vec![1.0, 2.0])),
            Value::Arr(Array::vec_f64(vec![3.0, 4.0])),
        ]);
        assert_eq!(rows.shape, vec![2, 2]);
        assert_eq!(rows.f64s(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn reverse_outer_dimension() {
        let a = Array::from_f64(vec![3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let r = a.reverse();
        assert_eq!(r.f64s(), &[5.0, 6.0, 3.0, 4.0, 1.0, 2.0]);
    }

    #[test]
    fn value_types() {
        assert_eq!(Value::F64(1.0).ty(), Type::F64);
        let a = Value::Arr(Array::zeros(ScalarType::I64, vec![2, 2]));
        assert_eq!(a.ty(), Type::arr_i64(2));
    }
}
