//! The execution-backend abstraction.
//!
//! The paper's evaluation hinges on executing AD-transformed IR with an
//! aggressively optimizing parallel backend; this reproduction has two:
//! the tree-walking [`Interp`](crate::Interp) in this crate and the
//! compiled bytecode VM in the `firvm` crate. Both implement [`Backend`],
//! so workloads, benchmarks and examples can be written once and pointed
//! at either (or at future backends — sharded, batched, remote…).

use fir::ir::Fun;

use crate::value::Value;
use crate::Interp;

/// An executor of type-checked `fir` functions.
pub trait Backend: Send + Sync {
    /// A short human-readable backend name (used in benchmark tables).
    fn name(&self) -> &'static str;

    /// Run `fun` on `args`, returning its results. Panics on malformed
    /// programs, like the interpreter does.
    fn run(&self, fun: &Fun, args: &[Value]) -> Vec<Value>;

    /// Run a single-result scalar function and return the `f64`.
    fn run_scalar(&self, fun: &Fun, args: &[Value]) -> f64 {
        self.run(fun, args)[0].as_f64()
    }
}

impl Backend for Interp {
    fn name(&self) -> &'static str {
        "interp"
    }

    fn run(&self, fun: &Fun, args: &[Value]) -> Vec<Value> {
        Interp::run(self, fun, args)
    }
}

/// Select a backend by name: `"interp"` for the tree-walking interpreter.
/// (The `firvm` crate registers itself under `"vm"` via its own
/// `backend_by_name`; this function only knows the backends defined here.)
pub fn backend_by_name(name: &str) -> Option<Box<dyn Backend>> {
    match name {
        "interp" => Some(Box::new(Interp::new())),
        "interp-seq" => Some(Box::new(Interp::sequential())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::Builder;
    use fir::types::Type;

    #[test]
    fn interp_implements_backend() {
        let mut b = Builder::new();
        let f = b.build_fun("sq", &[Type::F64], |b, ps| {
            vec![b.fmul(ps[0].into(), ps[0].into())]
        });
        let backend: Box<dyn Backend> = backend_by_name("interp").unwrap();
        assert_eq!(backend.name(), "interp");
        assert_eq!(backend.run_scalar(&f, &[Value::F64(3.0)]), 9.0);
        assert!(backend_by_name("no-such-backend").is_none());
    }
}
