//! The two-phase execution-backend abstraction.
//!
//! The paper's evaluation hinges on executing AD-transformed IR with an
//! aggressively optimizing parallel backend; this reproduction has two:
//! the tree-walking `Interp` in this crate and the
//! compiled bytecode VM in the `firvm` crate. Both implement [`Backend`],
//! which splits execution into two phases:
//!
//! 1. [`Backend::prepare`] type-checks (and, for compiled backends, lowers)
//!    a function **once**, returning a shared [`Executable`];
//! 2. [`Executable::run`] executes the prepared function on arguments,
//!    validating arity and argument types and returning `Err` instead of
//!    panicking on malformed input.
//!
//! The split matches the staged workflow of the `fir-api` crate — compile
//! once, run hot — and is what future scaling backends (sharded, batched,
//! remote) plug into: `prepare` is where a remote backend would ship the
//! program, `run` where it would dispatch a request.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use fir::ir::Fun;
use fir::types::Type;

use crate::error::{panic_message, ExecError};
use crate::value::Value;
use crate::Interp;

/// A function prepared for repeated execution on a backend.
///
/// Implementations are `Send + Sync` so one prepared program can serve
/// concurrent callers (this is what `fir-api`'s `call_batch` relies on).
pub trait Executable: Send + Sync {
    /// The name of the prepared function.
    fn fun_name(&self) -> &str;

    /// The declared parameter types, used for argument validation and for
    /// deriving adjoint seeds / tangents in higher layers.
    fn param_types(&self) -> &[Type];

    /// The declared result types.
    fn result_types(&self) -> &[Type];

    /// Execute on `args`, returning the results. Arity and argument-type
    /// mismatches, and any runtime failure of the executor, are reported as
    /// `Err` — never a panic.
    fn run(&self, args: &[Value]) -> Result<Vec<Value>, ExecError>;

    /// Execute a function whose first result is a scalar `f64`.
    fn run_scalar(&self, args: &[Value]) -> Result<f64, ExecError> {
        let out = self.run(args)?;
        match out.first() {
            Some(Value::F64(x)) => Ok(*x),
            other => Err(ExecError::NotScalar {
                fun: self.fun_name().to_string(),
                got: format!("{other:?}"),
            }),
        }
    }

    /// The concrete prepared value, for layers that can exploit a specific
    /// backend's representation (e.g. persisting a VM's compiled bytecode).
    /// Callers must treat a failed downcast as "not that backend", never an
    /// error.
    fn as_any(&self) -> &dyn std::any::Any;
}

/// An executor of type-checked `fir` functions.
pub trait Backend: Send + Sync {
    /// A short human-readable backend name (used in benchmark tables).
    fn name(&self) -> &'static str;

    /// Type-check and prepare `fun` for repeated execution. Ill-typed IR is
    /// rejected here (`ExecError::IllTyped`), so [`Executable::run`] never
    /// sees a malformed program.
    fn prepare(&self, fun: &Fun) -> Result<Arc<dyn Executable>, ExecError>;

    /// Run `fun` on `args`, panicking on any error.
    #[deprecated(note = "use `prepare()` + `Executable::run`, or the `fir-api` Engine")]
    fn run(&self, fun: &Fun, args: &[Value]) -> Vec<Value> {
        self.prepare(fun)
            .and_then(|exec| exec.run(args))
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run a single-result scalar function, panicking on any error.
    #[deprecated(note = "use `prepare()` + `Executable::run_scalar`, or the `fir-api` Engine")]
    fn run_scalar(&self, fun: &Fun, args: &[Value]) -> f64 {
        self.prepare(fun)
            .and_then(|exec| exec.run_scalar(args))
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The concrete backend value, for layers that can exploit a specific
    /// backend (see [`Executable::as_any`]).
    fn as_any(&self) -> &dyn std::any::Any;
}

/// Validate a call's arguments against the declared parameter types.
/// Shared by every backend so error messages are uniform.
pub fn validate_args(fun: &str, params: &[Type], args: &[Value]) -> Result<(), ExecError> {
    if args.len() != params.len() {
        return Err(ExecError::Arity {
            fun: fun.to_string(),
            expected: params.len(),
            got: args.len(),
        });
    }
    for (i, (arg, want)) in args.iter().zip(params).enumerate() {
        let got = arg.ty();
        if got != *want {
            return Err(ExecError::ArgType {
                fun: fun.to_string(),
                index: i,
                expected: *want,
                got,
            });
        }
    }
    Ok(())
}

/// A function prepared for the tree-walking interpreter: the (type-checked)
/// IR plus the execution configuration.
struct PreparedInterp {
    interp: Interp,
    fun: Arc<Fun>,
    params: Vec<Type>,
}

impl Executable for PreparedInterp {
    fn fun_name(&self) -> &str {
        &self.fun.name
    }

    fn param_types(&self) -> &[Type] {
        &self.params
    }

    fn result_types(&self) -> &[Type] {
        &self.fun.ret
    }

    fn run(&self, args: &[Value]) -> Result<Vec<Value>, ExecError> {
        validate_args(&self.fun.name, &self.params, args)?;
        catch_unwind(AssertUnwindSafe(|| self.interp.run(&self.fun, args))).map_err(|p| {
            ExecError::Runtime {
                fun: self.fun.name.clone(),
                message: panic_message(p),
            }
        })
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl Backend for Interp {
    fn name(&self) -> &'static str {
        "interp"
    }

    fn prepare(&self, fun: &Fun) -> Result<Arc<dyn Executable>, ExecError> {
        fir::typecheck::check_fun(fun)?;
        Ok(Arc::new(PreparedInterp {
            interp: self.clone(),
            params: fun.params.iter().map(|p| p.ty).collect(),
            fun: Arc::new(fun.clone()),
        }))
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::Builder;
    use fir::types::Type;

    fn square() -> Fun {
        let mut b = Builder::new();
        b.build_fun("sq", &[Type::F64], |b, ps| {
            vec![b.fmul(ps[0].into(), ps[0].into())]
        })
    }

    #[test]
    fn prepare_then_run() {
        let backend: &dyn Backend = &Interp::new();
        assert_eq!(backend.name(), "interp");
        let exec = backend.prepare(&square()).unwrap();
        assert_eq!(exec.fun_name(), "sq");
        assert_eq!(exec.param_types(), &[Type::F64]);
        assert_eq!(exec.result_types(), &[Type::F64]);
        assert_eq!(exec.run_scalar(&[Value::F64(3.0)]).unwrap(), 9.0);
    }

    #[test]
    fn arity_and_type_mismatches_are_errors() {
        let exec = Interp::sequential().prepare(&square()).unwrap();
        match exec.run(&[]) {
            Err(ExecError::Arity {
                expected: 1,
                got: 0,
                ..
            }) => {}
            other => panic!("expected arity error, got {other:?}"),
        }
        match exec.run(&[Value::I64(3)]) {
            Err(ExecError::ArgType { index: 0, .. }) => {}
            other => panic!("expected argument type error, got {other:?}"),
        }
    }

    #[test]
    fn ill_typed_ir_is_rejected_at_prepare() {
        use fir::ir::{Atom, Body, Exp, Param, Stm, UnOp, VarId};
        let bad = Fun {
            name: "bad".into(),
            params: vec![],
            body: Body::new(
                vec![Stm::new(
                    vec![Param::new(VarId(1), Type::F64)],
                    Exp::UnOp(UnOp::Sin, Atom::Var(VarId(99))),
                )],
                vec![Atom::Var(VarId(1))],
            ),
            ret: vec![Type::F64],
        };
        match Interp::new().prepare(&bad) {
            Err(ExecError::IllTyped(e)) => assert_eq!(e.in_fun.as_deref(), Some("bad")),
            Err(e) => panic!("expected IllTyped, got {e:?}"),
            Ok(_) => panic!("ill-typed IR must not prepare"),
        }
    }

    #[test]
    #[allow(deprecated)] // the blanket convenience stays until its last caller goes
    fn blanket_convenience_methods_run_through_prepare() {
        let backend: Box<dyn Backend> = Box::new(Interp::new());
        assert_eq!(backend.run_scalar(&square(), &[Value::F64(3.0)]), 9.0);
    }
}
