//! A persistent worker pool for bulk-parallel SOAC execution.
//!
//! The seed interpreter spawned fresh `std::thread::scope` threads for every
//! parallel SOAC, paying thread creation and teardown on each `map`/`reduce`
//! — inner loops of AD-transformed programs execute thousands of SOACs, so
//! that overhead dominated. This pool spawns its workers once (lazily, on
//! first parallel SOAC) and keeps them parked between calls, which is the
//! CPU analogue of a GPU runtime keeping its streams alive across kernel
//! launches. Both the tree-walking interpreter and the `firvm` bytecode VM
//! schedule their data-parallel chunks on the same shared pool.
//!
//! Scheduling is deliberately simple: a shared FIFO of erased jobs plus a
//! condvar. Two properties matter for correctness:
//!
//! * **Scoped tasks.** [`WorkerPool::run_tasks`] lets tasks borrow from the
//!   caller's stack. The lifetime is erased with `unsafe` and re-established
//!   by blocking until every task of the batch has completed (panics
//!   included) before returning.
//! * **No nested-parallelism deadlock.** While waiting for its batch, the
//!   submitting thread *helps*: it pops and runs pending jobs from the same
//!   queue. A SOAC nested inside another SOAC's task therefore always makes
//!   progress even when every worker is busy with (or blocked on) outer
//!   tasks.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;
/// A task's outcome slot: the result or the payload of its panic.
type TaskSlot<R> = Mutex<Option<Result<R, Box<dyn std::any::Any + Send>>>>;

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    work_cv: Condvar,
    /// Jobs currently sitting in `queue` (utilization gauge).
    queued: AtomicUsize,
    /// Worker threads currently executing a job. Submitting threads that
    /// help drain the queue while waiting are not counted — the gauge
    /// answers "how saturated are the pool's own workers".
    busy: AtomicUsize,
}

/// A point-in-time utilization snapshot of a [`WorkerPool`].
///
/// Both gauges are sampled racily (relaxed loads of counters other
/// threads update); a snapshot is a consistent *approximation* suitable
/// for dashboards and admission decisions, not a synchronization point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolUtilization {
    /// Background worker threads the pool owns.
    pub workers: usize,
    /// Workers currently executing a job.
    pub busy_workers: usize,
    /// Jobs waiting in the queue (scoped batch tasks and foreign
    /// submissions alike).
    pub queued_jobs: usize,
}

/// A persistent pool of worker threads executing scoped task batches.
pub struct WorkerPool {
    shared: &'static Shared,
    workers: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .finish()
    }
}

/// Completion tracking for one `run_tasks` batch.
struct Batch {
    pending: AtomicUsize,
    done_cv: Condvar,
    done_mu: Mutex<()>,
}

impl WorkerPool {
    /// Create a pool with `workers` background threads (at least one). The
    /// threads (and the queue they serve) are leaked intentionally: the pool
    /// lives for the whole process, exactly like a GPU context.
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            queued: AtomicUsize::new(0),
            busy: AtomicUsize::new(0),
        }));
        for i in 0..workers {
            std::thread::Builder::new()
                .name(format!("fir-worker-{i}"))
                .spawn(move || worker_loop(shared))
                .expect("failed to spawn pool worker");
        }
        WorkerPool { shared, workers }
    }

    /// The process-wide pool, sized to the available parallelism, created on
    /// first use.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let n = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4);
            WorkerPool::new(n)
        })
    }

    /// Number of background worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers
    }

    /// Sample the pool's current utilization (see [`PoolUtilization`]).
    pub fn utilization(&self) -> PoolUtilization {
        PoolUtilization {
            workers: self.workers,
            busy_workers: self.shared.busy.load(Ordering::Relaxed).min(self.workers),
            queued_jobs: self.shared.queued.load(Ordering::Relaxed),
        }
    }

    /// Submit a fire-and-forget job from any thread. Unlike
    /// [`WorkerPool::run_tasks`] the job is `'static` and the submitter
    /// does not block — this is the entry point for foreign threads (e.g.
    /// a serving dispatcher) that want work *scheduled on* the pool rather
    /// than a scoped batch executed *through* it. The job may itself call
    /// [`WorkerPool::run_tasks`]; the helping protocol keeps nested
    /// batches deadlock-free.
    ///
    /// A panicking job aborts only itself: the panic is caught and the
    /// worker thread survives. Jobs that need panic payloads or results
    /// should capture their own completion channel.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        let job: Job = Box::new(move || {
            let _ = catch_unwind(AssertUnwindSafe(job));
        });
        // The gauge increment happens under the lock: once the lock drops
        // a worker may pop (and decrement for) the job immediately.
        let queued = {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.push_back(job);
            self.shared.queued.fetch_add(1, Ordering::Relaxed) + 1
        };
        fir_trace::counter("pool", "queued_jobs", queued as u64);
        self.shared.work_cv.notify_one();
    }

    /// Run `tasks(i)` for every `i in 0..n` on the pool and return the
    /// results in index order. Blocks until every task has finished; the
    /// submitting thread helps drain the queue while it waits. Panics from
    /// tasks are propagated after the whole batch has completed.
    pub fn run_tasks<R: Send>(&self, n: usize, task: &(dyn Fn(usize) -> R + Sync)) -> Vec<R> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![task(0)];
        }
        let results: Vec<TaskSlot<R>> = (0..n).map(|_| Mutex::new(None)).collect();
        // The batch is heap-allocated and co-owned by every job: a worker
        // finishing the last task may still be touching the condvar *after*
        // the submitter has observed `pending == 0` and returned, so the
        // batch must not live on the submitter's stack.
        let batch = Arc::new(Batch {
            pending: AtomicUsize::new(n),
            done_cv: Condvar::new(),
            done_mu: Mutex::new(()),
        });

        {
            // Erase the borrow of `task` and `results`: sound because this
            // function does not return (and the erased jobs cannot run) past
            // the completion wait below — `results` writes and the `task`
            // call happen before the `pending` decrement the waiter
            // synchronizes on.
            let results_ref = &results;
            let submit = |i: usize| -> Job {
                let batch = Arc::clone(&batch);
                let job = move || {
                    let out = catch_unwind(AssertUnwindSafe(|| task(i)));
                    *results_ref[i].lock().unwrap() = Some(out.map_err(|e| e as _));
                    if batch.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                        let _guard = batch.done_mu.lock().unwrap();
                        batch.done_cv.notify_all();
                    }
                };
                let boxed: Box<dyn FnOnce() + Send + '_> = Box::new(job);
                // SAFETY: the job is dropped (after running) before
                // `run_tasks` returns, so the erased borrows stay valid.
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(boxed) }
            };
            let mut queue = self.shared.queue.lock().unwrap();
            for i in 0..n {
                queue.push_back(submit(i));
            }
            // Incremented before the lock drops, so a popping worker's
            // decrement can never observe the gauge below zero.
            self.shared.queued.fetch_add(n, Ordering::Relaxed);
            drop(queue);
            if n >= self.workers {
                self.shared.work_cv.notify_all();
            } else {
                for _ in 0..n {
                    self.shared.work_cv.notify_one();
                }
            }
        }

        // Help until the batch completes. Helping may execute jobs from
        // *other* batches (nested parallelism); that is fine — they are the
        // same kind of CPU work and it prevents deadlock.
        loop {
            if batch.pending.load(Ordering::Acquire) == 0 {
                break;
            }
            let job = self.shared.queue.lock().unwrap().pop_front();
            match job {
                Some(job) => {
                    self.shared.queued.fetch_sub(1, Ordering::Relaxed);
                    job()
                }
                None => {
                    let guard = batch.done_mu.lock().unwrap();
                    if batch.pending.load(Ordering::Acquire) == 0 {
                        break;
                    }
                    // Timed wait: a worker finishing our last job may notify
                    // between the pending check and the wait.
                    let _unused = batch.done_cv.wait_timeout(guard, Duration::from_millis(1));
                }
            }
        }

        let mut out = Vec::with_capacity(n);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for slot in results {
            match slot.into_inner().unwrap().expect("pool task did not run") {
                Ok(r) => out.push(r),
                Err(e) => panic = Some(e),
            }
        }
        if let Some(e) = panic {
            resume_unwind(e);
        }
        out
    }

    /// Split `0..n` into at most `max_chunks` contiguous chunks and run
    /// `f(lo, hi)` for each on the pool, returning per-chunk results in
    /// order. `f` runs inline when a single chunk suffices.
    pub fn run_chunked<R: Send>(
        &self,
        n: usize,
        max_chunks: usize,
        f: &(dyn Fn(usize, usize) -> R + Sync),
    ) -> Vec<R> {
        if n == 0 {
            return Vec::new();
        }
        let nchunks = max_chunks.clamp(1, n);
        let chunk = n.div_ceil(nchunks);
        let nchunks = n.div_ceil(chunk);
        self.run_tasks(nchunks, &|t| {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            f(lo, hi)
        })
    }
}

fn worker_loop(shared: &'static Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = shared.work_cv.wait(queue).unwrap();
            }
        };
        shared.queued.fetch_sub(1, Ordering::Relaxed);
        let busy = shared.busy.fetch_add(1, Ordering::Relaxed) + 1;
        fir_trace::counter("pool", "busy_workers", busy as u64);
        job();
        let busy = shared.busy.fetch_sub(1, Ordering::Relaxed) - 1;
        fir_trace::counter("pool", "busy_workers", busy as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_index_order() {
        let pool = WorkerPool::global();
        let out = pool.run_tasks(100, &|i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_covers_every_index_once() {
        let pool = WorkerPool::global();
        let hits = AtomicU64::new(0);
        let spans = pool.run_chunked(1000, 7, &|lo, hi| {
            hits.fetch_add((hi - lo) as u64, Ordering::Relaxed);
            (lo, hi)
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
        let mut expect = 0;
        for (lo, hi) in spans {
            assert_eq!(lo, expect);
            expect = hi;
        }
        assert_eq!(expect, 1000);
    }

    #[test]
    fn nested_batches_do_not_deadlock() {
        let pool = WorkerPool::global();
        let out = pool.run_tasks(8, &|i| {
            let inner = pool.run_tasks(8, &|j| i * 8 + j);
            inner.into_iter().sum::<usize>()
        });
        let want: Vec<usize> = (0..8).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn panics_propagate_after_batch_completion() {
        let pool = WorkerPool::global();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_tasks(4, &|i| {
                if i == 2 {
                    panic!("task failure");
                }
                i
            })
        }));
        assert!(result.is_err());
        // The pool stays usable afterwards.
        assert_eq!(pool.run_tasks(3, &|i| i), vec![0, 1, 2]);
    }

    #[test]
    fn spawned_jobs_run_and_panics_do_not_kill_workers() {
        let pool = WorkerPool::global();
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        for _ in 0..8 {
            let done = Arc::clone(&done);
            pool.spawn(move || {
                let (mu, cv) = &*done;
                *mu.lock().unwrap() += 1;
                cv.notify_all();
            });
        }
        pool.spawn(|| panic!("spawned job panic must not kill the worker"));
        let (mu, cv) = &*done;
        let mut n = mu.lock().unwrap();
        while *n < 8 {
            let (guard, timeout) = cv
                .wait_timeout(n, Duration::from_secs(10))
                .expect("poisoned");
            n = guard;
            assert!(!timeout.timed_out(), "spawned jobs did not complete");
        }
        // The pool still serves scoped batches after the panic.
        assert_eq!(pool.run_tasks(3, &|i| i), vec![0, 1, 2]);
    }

    #[test]
    fn utilization_tracks_busy_and_queued() {
        // A private 2-worker pool (not the global one, whose load other
        // tests control): block both workers on a gate, leaving two jobs
        // queued, and watch the gauges move.
        let pool = WorkerPool::new(2);
        let u = pool.utilization();
        assert_eq!((u.workers, u.busy_workers, u.queued_jobs), (2, 0, 0));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        for _ in 0..4 {
            let gate = Arc::clone(&gate);
            pool.spawn(move || {
                let (mu, cv) = &*gate;
                let mut open = mu.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            });
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while pool.utilization().busy_workers < 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "workers never picked up the gated jobs"
            );
            std::thread::yield_now();
        }
        let u = pool.utilization();
        assert_eq!((u.busy_workers, u.queued_jobs), (2, 2));
        let (mu, cv) = &*gate;
        *mu.lock().unwrap() = true;
        cv.notify_all();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let u = pool.utilization();
            if u.busy_workers == 0 && u.queued_jobs == 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "gauges never drained: {u:?}"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn empty_and_single_batches() {
        let pool = WorkerPool::global();
        assert_eq!(pool.run_tasks(0, &|i| i), Vec::<usize>::new());
        assert_eq!(pool.run_tasks(1, &|i| i + 41), vec![41]);
    }
}
