//! Evaluation of `fir` programs.
//!
//! The evaluator executes programs either sequentially or with bulk-parallel
//! SOACs spread over OS threads (the stand-in for Futhark's GPU backend in
//! this reproduction). Accumulator updates use atomic adds, mirroring
//! `atomicAdd`-based code generation. Programs are assumed to be well-typed
//! (see `fir::typecheck`); the evaluator panics on malformed input.

use std::collections::HashMap;

use fir::ir::{Atom, BinOp, Body, Const, Exp, Fun, Lambda, ReduceOp, Stm, UnOp, VarId};
use fir::types::ScalarType;

use crate::acc::Accum;
use crate::value::{Array, Value};

/// Execution configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Execute SOACs over multiple threads when they are large enough.
    pub parallel: bool,
    /// Maximum number of worker threads.
    pub num_threads: usize,
    /// Minimum outer size of a SOAC before it is executed in parallel.
    pub parallel_threshold: usize,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            parallel: true,
            num_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            parallel_threshold: 2048,
        }
    }
}

impl ExecConfig {
    /// A configuration that always runs sequentially (used for the
    /// "sequential CPU" rows of the evaluation, e.g. ADBench Table 1).
    pub fn sequential() -> ExecConfig {
        ExecConfig {
            parallel: false,
            num_threads: 1,
            parallel_threshold: usize::MAX,
        }
    }

    /// Whether a bulk operation of outer size `n` should be spread over the
    /// worker pool under this configuration. The single gating policy for
    /// every backend.
    pub fn should_parallelize(&self, n: usize) -> bool {
        self.parallel && self.num_threads > 1 && n >= self.parallel_threshold
    }
}

/// A lexical environment frame. Lambdas, loops and branches evaluate their
/// bodies in child frames so bindings never leak and nothing needs cloning.
struct Env<'p> {
    parent: Option<&'p Env<'p>>,
    vars: HashMap<VarId, Value>,
}

impl<'p> Env<'p> {
    fn root() -> Env<'static> {
        Env {
            parent: None,
            vars: HashMap::new(),
        }
    }

    fn child(&'p self) -> Env<'p> {
        Env {
            parent: Some(self),
            vars: HashMap::new(),
        }
    }

    fn bind(&mut self, v: VarId, val: Value) {
        self.vars.insert(v, val);
    }

    fn lookup(&self, v: VarId) -> &Value {
        let mut cur = Some(self);
        while let Some(e) = cur {
            if let Some(val) = e.vars.get(&v) {
                return val;
            }
            cur = e.parent;
        }
        panic!("unbound variable {v} at runtime")
    }

    /// Take ownership of a consumed array (for in-place updates): if the
    /// variable is bound in the *current* frame it is removed (its unique
    /// buffer can then be mutated without copying); otherwise the value is
    /// cloned from an ancestor frame. This mirrors Futhark's uniqueness
    /// semantics: the consumed name must not be used again.
    fn take_consumed(&mut self, v: VarId) -> Value {
        if let Some(val) = self.vars.remove(&v) {
            return val;
        }
        self.lookup(v).clone()
    }
}

/// The interpreter.
#[derive(Debug, Clone, Default)]
pub struct Interp {
    cfg: ExecConfig,
}

impl Interp {
    /// An interpreter with the default (parallel) configuration.
    pub fn new() -> Interp {
        Interp {
            cfg: ExecConfig::default(),
        }
    }

    /// An interpreter that runs everything sequentially.
    pub fn sequential() -> Interp {
        Interp {
            cfg: ExecConfig::sequential(),
        }
    }

    /// An interpreter with an explicit configuration.
    pub fn with_config(cfg: ExecConfig) -> Interp {
        Interp { cfg }
    }

    /// Run a function on the given argument values.
    pub fn run(&self, fun: &Fun, args: &[Value]) -> Vec<Value> {
        assert_eq!(
            fun.params.len(),
            args.len(),
            "{}: expected {} arguments, got {}",
            fun.name,
            fun.params.len(),
            args.len()
        );
        let mut env = Env::root();
        for (p, a) in fun.params.iter().zip(args) {
            env.bind(p.var, a.clone());
        }
        self.eval_body(&mut env, &fun.body)
    }

    fn atom(&self, env: &Env, a: &Atom) -> Value {
        match a {
            Atom::Var(v) => env.lookup(*v).clone(),
            Atom::Const(Const::F64(x)) => Value::F64(*x),
            Atom::Const(Const::I64(x)) => Value::I64(*x),
            Atom::Const(Const::Bool(x)) => Value::Bool(*x),
        }
    }

    fn eval_body(&self, env: &mut Env, body: &Body) -> Vec<Value> {
        for Stm { pat, exp } in &body.stms {
            let vals = self.eval_exp(&mut *env, exp);
            assert_eq!(vals.len(), pat.len(), "{}: arity mismatch", exp.kind());
            for (p, v) in pat.iter().zip(vals) {
                env.bind(p.var, v);
            }
        }
        body.result.iter().map(|a| self.atom(env, a)).collect()
    }

    fn eval_in_child(&self, env: &Env, body: &Body) -> Vec<Value> {
        let mut inner = env.child();
        self.eval_body(&mut inner, body)
    }

    fn eval_lambda(&self, env: &Env, lam: &Lambda, args: Vec<Value>) -> Vec<Value> {
        assert_eq!(lam.params.len(), args.len(), "lambda arity mismatch");
        let mut inner = env.child();
        for (p, a) in lam.params.iter().zip(args) {
            inner.bind(p.var, a);
        }
        self.eval_body(&mut inner, &lam.body)
    }

    /// Run `f` for every index in `0..n`, in parallel when allowed and
    /// worthwhile, returning the results in index order. Parallel execution
    /// is chunked over the persistent [`WorkerPool`](crate::WorkerPool) —
    /// no threads are spawned per SOAC.
    fn par_map<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if !self.cfg.parallel || n < self.cfg.parallel_threshold || self.cfg.num_threads <= 1 {
            return (0..n).map(f).collect();
        }
        let chunks =
            crate::pool::WorkerPool::global().run_chunked(n, self.cfg.num_threads, &|lo, hi| {
                (lo..hi).map(&f).collect::<Vec<R>>()
            });
        let mut out = Vec::with_capacity(n);
        for c in chunks {
            out.extend(c);
        }
        out
    }

    fn index_values(&self, env: &Env, idx: &[Atom]) -> Vec<usize> {
        idx.iter()
            .map(|a| {
                let i = self.atom(env, a).as_i64();
                assert!(i >= 0, "negative index {i}");
                i as usize
            })
            .collect()
    }

    fn eval_exp(&self, env: &mut Env, exp: &Exp) -> Vec<Value> {
        match exp {
            Exp::Atom(a) => vec![self.atom(env, a)],
            Exp::UnOp(op, a) => vec![eval_unop(*op, self.atom(env, a))],
            Exp::BinOp(op, a, b) => {
                vec![eval_binop(*op, self.atom(env, a), self.atom(env, b))]
            }
            Exp::Select { cond, t, f } => {
                let c = self.atom(env, cond).as_bool();
                vec![if c {
                    self.atom(env, t)
                } else {
                    self.atom(env, f)
                }]
            }
            Exp::Index { arr, idx } => {
                let a = env.lookup(*arr).as_arr().clone();
                let idx = self.index_values(env, idx);
                vec![a.index(&idx)]
            }
            Exp::Update { arr, idx, val } => {
                let idx = self.index_values(env, idx);
                let v = self.atom(env, val);
                let mut a = env.take_consumed(*arr).into_arr();
                a.write(&idx, &v);
                vec![Value::Arr(a)]
            }
            Exp::Len(v) => vec![Value::I64(env.lookup(*v).as_arr().len() as i64)],
            Exp::Iota(n) => {
                let n = self.atom(env, n).as_i64().max(0) as usize;
                vec![Value::Arr(Array::vec_i64((0..n as i64).collect()))]
            }
            Exp::Replicate { n, val } => {
                let n = self.atom(env, n).as_i64().max(0) as usize;
                let v = self.atom(env, val);
                vec![Value::Arr(replicate(n, &v))]
            }
            Exp::Reverse(v) => vec![Value::Arr(env.lookup(*v).as_arr().reverse())],
            Exp::Copy(v) => vec![env.lookup(*v).clone()],
            Exp::If {
                cond,
                then_br,
                else_br,
            } => {
                if self.atom(env, cond).as_bool() {
                    self.eval_in_child(env, then_br)
                } else {
                    self.eval_in_child(env, else_br)
                }
            }
            Exp::Loop {
                params,
                index,
                count,
                body,
            } => {
                let n = self.atom(env, count).as_i64().max(0);
                let mut state: Vec<Value> = params
                    .iter()
                    .map(|(_, init)| self.atom(env, init))
                    .collect();
                for i in 0..n {
                    // Loop-variant values are *moved* into the iteration's
                    // frame so in-place updates on them need not copy.
                    let mut inner = env.child();
                    for ((p, _), v) in params.iter().zip(std::mem::take(&mut state)) {
                        inner.bind(p.var, v);
                    }
                    inner.bind(*index, Value::I64(i));
                    state = self.eval_body(&mut inner, body);
                }
                state
            }
            Exp::Map { lam, args } => self.eval_map(env, lam, args),
            Exp::Reduce { lam, neutral, args } => self.eval_reduce(env, lam, neutral, args),
            Exp::Scan { lam, neutral, args } => self.eval_scan(env, lam, neutral, args),
            Exp::Redomap {
                red_lam,
                map_lam,
                neutral,
                args,
            } => self.eval_redomap(env, red_lam, map_lam, neutral, args),
            Exp::Hist {
                op,
                num_bins,
                inds,
                vals,
            } => self.eval_hist(env, *op, num_bins, *inds, *vals),
            Exp::Scatter { dest, inds, vals } => {
                let inds = env.lookup(*inds).as_arr().clone();
                let vals = env.lookup(*vals).as_arr().clone();
                let mut dest = env.take_consumed(*dest).into_arr();
                let n = inds.len().min(vals.len());
                for k in 0..n {
                    let j = inds.i64s()[k];
                    if j >= 0 && (j as usize) < dest.len() {
                        dest.write(&[j as usize], &vals.index(&[k]));
                    }
                }
                vec![Value::Arr(dest)]
            }
            Exp::WithAcc { arrs, lam } => self.eval_withacc(env, arrs, lam),
            Exp::UpdAcc { acc, idx, val } => {
                let acc = env.lookup(*acc).as_acc().clone();
                let idx = self.index_values(env, idx);
                if acc.in_bounds(&idx) {
                    let (off, span) = acc.offset_of(&idx);
                    match self.atom(env, val) {
                        Value::F64(x) => {
                            debug_assert_eq!(span, 1);
                            acc.add_at(off, x);
                        }
                        Value::Arr(a) => {
                            debug_assert_eq!(span, a.f64s().len());
                            acc.add_slice(off, a.f64s());
                        }
                        other => panic!("upd_acc with non-float value {other:?}"),
                    }
                }
                vec![Value::Acc(acc)]
            }
        }
    }

    fn eval_map(&self, env: &Env, lam: &Lambda, args: &[VarId]) -> Vec<Value> {
        let argvals: Vec<Value> = args.iter().map(|v| env.lookup(*v).clone()).collect();
        let n = argvals
            .iter()
            .find_map(|v| match v {
                Value::Arr(a) => Some(a.len()),
                _ => None,
            })
            .expect("map needs at least one array argument");
        let results: Vec<Vec<Value>> = self.par_map(n, |i| {
            let elems: Vec<Value> = argvals
                .iter()
                .map(|v| match v {
                    Value::Arr(a) => a.index(&[i]),
                    Value::Acc(acc) => Value::Acc(acc.clone()),
                    other => panic!("map over non-array {other:?}"),
                })
                .collect();
            self.eval_lambda(env, lam, elems)
        });
        let width = lam.ret.len();
        let mut out = Vec::with_capacity(width);
        for j in 0..width {
            if lam.ret[j].is_acc() {
                // All iterations share the same accumulator buffer; return
                // the handle itself ("array of accumulators" = accumulator).
                let acc = match &results[0][j] {
                    Value::Acc(a) => a.clone(),
                    other => panic!("map declared accumulator result, got {other:?}"),
                };
                out.push(Value::Acc(acc));
            } else if n == 0 {
                out.push(Value::Arr(Array::zeros(lam.ret[j].elem(), vec![0])));
            } else {
                let column: Vec<Value> = results.iter().map(|r| r[j].clone()).collect();
                out.push(Value::Arr(Array::stack(&column)));
            }
        }
        out
    }

    fn eval_reduce(&self, env: &Env, lam: &Lambda, neutral: &[Atom], args: &[VarId]) -> Vec<Value> {
        let argvals: Vec<Array> = args
            .iter()
            .map(|v| env.lookup(*v).as_arr().clone())
            .collect();
        let n = argvals[0].len();
        let ne: Vec<Value> = neutral.iter().map(|a| self.atom(env, a)).collect();
        let fold_range = |lo: usize, hi: usize| -> Vec<Value> {
            let mut acc = ne.clone();
            for i in lo..hi {
                let mut lam_args = acc;
                lam_args.extend(argvals.iter().map(|a| a.index(&[i])));
                acc = self.eval_lambda(env, lam, lam_args);
            }
            acc
        };
        if !self.cfg.should_parallelize(n) {
            return fold_range(0, n);
        }
        // Parallel tree reduction: fold chunks independently (starting from
        // the neutral element), then combine the per-chunk results with the
        // same operator. Requires associativity, as the language does.
        let partials: Vec<Vec<Value>> =
            crate::pool::WorkerPool::global()
                .run_chunked(n, self.cfg.num_threads, &|lo, hi| fold_range(lo, hi));
        let mut acc = ne.clone();
        for p in partials {
            let mut lam_args = acc;
            lam_args.extend(p);
            acc = self.eval_lambda(env, lam, lam_args);
        }
        acc
    }

    /// Fused `reduce ∘ map`: per element, apply `map_lam`, then fold the
    /// results into the accumulator with `red_lam`. Per-chunk folds start
    /// from the neutral element and partials combine with `red_lam` alone,
    /// exactly as [`Interp::eval_reduce`] does — so a fused program is
    /// bitwise identical to the `reduce (map ...)` it was fused from, in
    /// both sequential and parallel configurations.
    fn eval_redomap(
        &self,
        env: &Env,
        red_lam: &Lambda,
        map_lam: &Lambda,
        neutral: &[Atom],
        args: &[VarId],
    ) -> Vec<Value> {
        let argvals: Vec<Array> = args
            .iter()
            .map(|v| env.lookup(*v).as_arr().clone())
            .collect();
        let n = argvals[0].len();
        let ne: Vec<Value> = neutral.iter().map(|a| self.atom(env, a)).collect();
        let fold_range = |lo: usize, hi: usize| -> Vec<Value> {
            let mut acc = ne.clone();
            for i in lo..hi {
                let elems: Vec<Value> = argvals.iter().map(|a| a.index(&[i])).collect();
                let vals = self.eval_lambda(env, map_lam, elems);
                let mut lam_args = acc;
                lam_args.extend(vals);
                acc = self.eval_lambda(env, red_lam, lam_args);
            }
            acc
        };
        if !self.cfg.should_parallelize(n) {
            return fold_range(0, n);
        }
        let partials: Vec<Vec<Value>> =
            crate::pool::WorkerPool::global()
                .run_chunked(n, self.cfg.num_threads, &|lo, hi| fold_range(lo, hi));
        let mut acc = ne.clone();
        for p in partials {
            let mut lam_args = acc;
            lam_args.extend(p);
            acc = self.eval_lambda(env, red_lam, lam_args);
        }
        acc
    }

    fn eval_scan(&self, env: &Env, lam: &Lambda, neutral: &[Atom], args: &[VarId]) -> Vec<Value> {
        let argvals: Vec<Array> = args
            .iter()
            .map(|v| env.lookup(*v).as_arr().clone())
            .collect();
        let n = argvals[0].len();
        let mut acc: Vec<Value> = neutral.iter().map(|a| self.atom(env, a)).collect();
        let width = acc.len();
        let mut cols: Vec<Vec<Value>> = vec![Vec::with_capacity(n); width];
        for i in 0..n {
            let mut lam_args = acc;
            lam_args.extend(argvals.iter().map(|a| a.index(&[i])));
            acc = self.eval_lambda(env, lam, lam_args);
            for (j, v) in acc.iter().enumerate() {
                cols[j].push(v.clone());
            }
        }
        cols.into_iter()
            .zip(&lam.ret)
            .map(|(col, ty)| {
                if col.is_empty() {
                    Value::Arr(Array::zeros(ty.elem(), vec![0]))
                } else {
                    Value::Arr(Array::stack(&col))
                }
            })
            .collect()
    }

    fn eval_hist(
        &self,
        env: &Env,
        op: ReduceOp,
        num_bins: &Atom,
        inds: VarId,
        vals: VarId,
    ) -> Vec<Value> {
        let m = self.atom(env, num_bins).as_i64().max(0) as usize;
        let inds = env.lookup(inds).as_arr().clone();
        let vals = env.lookup(vals).as_arr().clone();
        let stride = vals.stride();
        let mut shape = vals.shape.clone();
        shape[0] = m;
        let n = inds.len().min(vals.len());
        if op == ReduceOp::Add && self.cfg.parallel && n >= self.cfg.parallel_threshold {
            // Parallel histogram with atomic adds, as generated for GPUs.
            let acc = Accum::zeros(shape);
            let idata = inds.i64s();
            let vdata = vals.f64s();
            self.par_map(n, |k| {
                let bin = idata[k];
                if bin >= 0 && (bin as usize) < m {
                    acc.add_slice(bin as usize * stride, &vdata[k * stride..(k + 1) * stride]);
                }
            });
            return vec![Value::Arr(acc.to_array())];
        }
        let total: usize = shape.iter().product();
        let mut out = vec![op.neutral_f64(); total];
        let idata = inds.i64s();
        let vdata = vals.f64s();
        for k in 0..n {
            let bin = idata[k];
            if bin >= 0 && (bin as usize) < m {
                let off = bin as usize * stride;
                for j in 0..stride {
                    out[off + j] = op.apply_f64(out[off + j], vdata[k * stride + j]);
                }
            }
        }
        vec![Value::Arr(Array::from_f64(shape, out))]
    }

    fn eval_withacc(&self, env: &Env, arrs: &[VarId], lam: &Lambda) -> Vec<Value> {
        let accs: Vec<Accum> = arrs
            .iter()
            .map(|v| Accum::from_array(env.lookup(*v).as_arr()))
            .collect();
        let lam_args: Vec<Value> = accs.iter().map(|a| Value::Acc(a.clone())).collect();
        let results = self.eval_lambda(env, lam, lam_args);
        let mut out: Vec<Value> = accs.iter().map(|a| Value::Arr(a.to_array())).collect();
        out.extend(results.into_iter().skip(arrs.len()));
        out
    }
}

/// `replicate n v` as a fresh array (shared with the bytecode VM).
pub fn replicate(n: usize, v: &Value) -> Array {
    match v {
        Value::F64(x) => Array::vec_f64(vec![*x; n]),
        Value::I64(x) => Array::vec_i64(vec![*x; n]),
        Value::Bool(x) => Array::from_bool(vec![n], vec![*x; n]),
        Value::Arr(a) => {
            let mut shape = vec![n];
            shape.extend_from_slice(&a.shape);
            match a.elem() {
                ScalarType::F64 => Array::from_f64(shape, a.f64s().repeat(n)),
                ScalarType::I64 => Array::from_i64(shape, a.i64s().repeat(n)),
                ScalarType::Bool => Array::from_bool(shape, a.bools().repeat(n)),
            }
        }
        Value::Acc(_) => panic!("replicate of accumulator"),
    }
}

/// Apply a unary scalar primitive (shared with the bytecode VM).
pub fn eval_unop(op: UnOp, a: Value) -> Value {
    match (op, a) {
        (UnOp::Neg, Value::F64(x)) => Value::F64(-x),
        (UnOp::Neg, Value::I64(x)) => Value::I64(-x),
        (UnOp::Sin, Value::F64(x)) => Value::F64(x.sin()),
        (UnOp::Cos, Value::F64(x)) => Value::F64(x.cos()),
        (UnOp::Exp, Value::F64(x)) => Value::F64(x.exp()),
        (UnOp::Log, Value::F64(x)) => Value::F64(x.ln()),
        (UnOp::Sqrt, Value::F64(x)) => Value::F64(x.sqrt()),
        (UnOp::Tanh, Value::F64(x)) => Value::F64(x.tanh()),
        (UnOp::Sigmoid, Value::F64(x)) => Value::F64(1.0 / (1.0 + (-x).exp())),
        (UnOp::Abs, Value::F64(x)) => Value::F64(x.abs()),
        (UnOp::Abs, Value::I64(x)) => Value::I64(x.abs()),
        (UnOp::Recip, Value::F64(x)) => Value::F64(1.0 / x),
        (UnOp::Not, Value::Bool(x)) => Value::Bool(!x),
        (UnOp::ToF64, Value::I64(x)) => Value::F64(x as f64),
        (UnOp::ToF64, Value::F64(x)) => Value::F64(x),
        (UnOp::ToI64, Value::F64(x)) => Value::I64(x as i64),
        (UnOp::ToI64, Value::I64(x)) => Value::I64(x),
        (op, a) => panic!("unop {op:?} on {a:?}"),
    }
}

/// Apply a binary scalar primitive (shared with the bytecode VM).
pub fn eval_binop(op: BinOp, a: Value, b: Value) -> Value {
    use BinOp::*;
    match (a, b) {
        (Value::F64(x), Value::F64(y)) => match op {
            Add => Value::F64(x + y),
            Sub => Value::F64(x - y),
            Mul => Value::F64(x * y),
            Div => Value::F64(x / y),
            Pow => Value::F64(x.powf(y)),
            Min => Value::F64(x.min(y)),
            Max => Value::F64(x.max(y)),
            Rem => Value::F64(x % y),
            Eq => Value::Bool(x == y),
            Neq => Value::Bool(x != y),
            Lt => Value::Bool(x < y),
            Le => Value::Bool(x <= y),
            Gt => Value::Bool(x > y),
            Ge => Value::Bool(x >= y),
            And | Or => panic!("logical operator on floats"),
        },
        (Value::I64(x), Value::I64(y)) => match op {
            Add => Value::I64(x + y),
            Sub => Value::I64(x - y),
            Mul => Value::I64(x * y),
            Div => Value::I64(x / y),
            Pow => Value::I64(x.pow(y.max(0) as u32)),
            Min => Value::I64(x.min(y)),
            Max => Value::I64(x.max(y)),
            Rem => Value::I64(x % y),
            Eq => Value::Bool(x == y),
            Neq => Value::Bool(x != y),
            Lt => Value::Bool(x < y),
            Le => Value::Bool(x <= y),
            Gt => Value::Bool(x > y),
            Ge => Value::Bool(x >= y),
            And | Or => panic!("logical operator on ints"),
        },
        (Value::Bool(x), Value::Bool(y)) => match op {
            And => Value::Bool(x && y),
            Or => Value::Bool(x || y),
            Eq => Value::Bool(x == y),
            Neq => Value::Bool(x != y),
            _ => panic!("arithmetic operator on bools"),
        },
        (a, b) => panic!("binop {op:?} on mismatched operands {a:?} and {b:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::builder::Builder;
    use fir::types::Type;

    fn run1(fun: &Fun, args: &[Value]) -> Value {
        Interp::sequential().run(fun, args).remove(0)
    }

    #[test]
    fn scalar_arithmetic() {
        let mut b = Builder::new();
        let f = b.build_fun("f", &[Type::F64, Type::F64], |b, ps| {
            let x = Atom::Var(ps[0]);
            let y = Atom::Var(ps[1]);
            let s = b.fsin(x);
            let p = b.fmul(y, s);
            vec![b.fadd(p, Atom::f64(1.0))]
        });
        let r = run1(&f, &[Value::F64(0.5), Value::F64(2.0)]);
        assert!((r.as_f64() - (2.0 * 0.5f64.sin() + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn map_reduce_dot_product() {
        let mut b = Builder::new();
        let f = b.build_fun("dot", &[Type::arr_f64(1), Type::arr_f64(1)], |b, ps| {
            let prods = b.map1(Type::arr_f64(1), &[ps[0], ps[1]], |b, es| {
                vec![b.fmul(es[0].into(), es[1].into())]
            });
            vec![Atom::Var(b.sum(prods))]
        });
        let x = Value::from(vec![1.0, 2.0, 3.0]);
        let y = Value::from(vec![4.0, 5.0, 6.0]);
        assert_eq!(run1(&f, &[x, y]).as_f64(), 32.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut b = Builder::new();
        let f = b.build_fun("sumsq", &[Type::arr_f64(1)], |b, ps| {
            let sq = b.map1(Type::arr_f64(1), &[ps[0]], |b, es| {
                vec![b.fmul(es[0].into(), es[0].into())]
            });
            vec![Atom::Var(b.sum(sq))]
        });
        let data: Vec<f64> = (0..10_000).map(|i| (i as f64) * 0.001).collect();
        let seq = Interp::sequential().run(&f, &[Value::from(data.clone())])[0].as_f64();
        let par = Interp::with_config(ExecConfig {
            parallel: true,
            num_threads: 4,
            parallel_threshold: 16,
        })
        .run(&f, &[Value::from(data)])[0]
            .as_f64();
        assert!((seq - par).abs() < 1e-6 * seq.abs());
    }

    #[test]
    fn loop_computes_power() {
        let mut b = Builder::new();
        let f = b.build_fun("pow", &[Type::F64, Type::I64], |b, ps| {
            let x = Atom::Var(ps[0]);
            let n = Atom::Var(ps[1]);
            let r = b.loop_(&[(Type::F64, Atom::f64(1.0))], n, |b, _i, acc| {
                vec![b.fmul(acc[0].into(), x)]
            });
            vec![r[0].into()]
        });
        assert_eq!(
            run1(&f, &[Value::F64(2.0), Value::I64(10)]).as_f64(),
            1024.0
        );
    }

    #[test]
    fn if_and_select() {
        let mut b = Builder::new();
        let f = b.build_fun("absish", &[Type::F64], |b, ps| {
            let x = Atom::Var(ps[0]);
            let c = b.lt(x, Atom::f64(0.0));
            let r = b.if_(c, &[Type::F64], |b| vec![b.fneg(x)], |_b| vec![x]);
            vec![r[0].into()]
        });
        assert_eq!(run1(&f, &[Value::F64(-3.0)]).as_f64(), 3.0);
        assert_eq!(run1(&f, &[Value::F64(4.0)]).as_f64(), 4.0);
    }

    #[test]
    fn scan_and_reverse() {
        let mut b = Builder::new();
        let f = b.build_fun("scanrev", &[Type::arr_f64(1)], |b, ps| {
            let s = b.scan_add(ps[0]);
            let r = b.reverse(s);
            vec![Atom::Var(r)]
        });
        let out = run1(&f, &[Value::from(vec![1.0, 2.0, 3.0])]);
        assert_eq!(out.as_arr().f64s(), &[6.0, 3.0, 1.0]);
    }

    #[test]
    fn hist_add_and_max() {
        let mut b = Builder::new();
        let f = b.build_fun("h", &[Type::arr_i64(1), Type::arr_f64(1)], |b, ps| {
            let h1 = b.hist(ReduceOp::Add, Atom::i64(3), ps[0], ps[1]);
            let h2 = b.hist(ReduceOp::Max, Atom::i64(3), ps[0], ps[1]);
            vec![Atom::Var(h1), Atom::Var(h2)]
        });
        let inds = Value::from(vec![0i64, 1, 0, 2, 1]);
        let vals = Value::from(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let out = Interp::sequential().run(&f, &[inds, vals]);
        assert_eq!(out[0].as_arr().f64s(), &[4.0, 7.0, 4.0]);
        assert_eq!(out[1].as_arr().f64s(), &[3.0, 5.0, 4.0]);
    }

    #[test]
    fn scatter_ignores_out_of_bounds() {
        let mut b = Builder::new();
        let f = b.build_fun(
            "sc",
            &[Type::arr_f64(1), Type::arr_i64(1), Type::arr_f64(1)],
            |b, ps| {
                let r = b.scatter(ps[0], ps[1], ps[2]);
                vec![Atom::Var(r)]
            },
        );
        let dest = Value::from(vec![0.0; 4]);
        let inds = Value::from(vec![2i64, -1, 5, 0]);
        let vals = Value::from(vec![10.0, 20.0, 30.0, 40.0]);
        let out = run1(&f, &[dest, inds, vals]);
        assert_eq!(out.as_arr().f64s(), &[40.0, 0.0, 10.0, 0.0]);
    }

    #[test]
    fn withacc_updacc_accumulates() {
        let mut b = Builder::new();
        let f = b.build_fun(
            "acc",
            &[Type::arr_f64(1), Type::arr_i64(1), Type::arr_f64(1)],
            |b, ps| {
                let dst = ps[0];
                let inds = ps[1];
                let vals = ps[2];
                let out = b.with_acc(&[dst], |b, accs| {
                    let acc = accs[0];
                    let r = b.map1(b.ty_of(acc), &[inds, vals, acc], |b, es| {
                        let i = es[0];
                        let v = es[1];
                        let a = es[2];
                        vec![b.upd_acc(a, &[i.into()], v.into()).into()]
                    });
                    vec![r.into()]
                });
                vec![out[0].into()]
            },
        );
        let dst = Value::from(vec![1.0, 1.0, 1.0]);
        let inds = Value::from(vec![0i64, 2, 0]);
        let vals = Value::from(vec![5.0, 7.0, 3.0]);
        let out = run1(&f, &[dst, inds, vals]);
        assert_eq!(out.as_arr().f64s(), &[9.0, 1.0, 8.0]);
    }

    #[test]
    fn nested_map_over_matrix() {
        let mut b = Builder::new();
        let f = b.build_fun("rowsums", &[Type::arr_f64(2)], |b, ps| {
            let sums = b.map1(Type::arr_f64(1), &[ps[0]], |b, rows| {
                vec![Atom::Var(b.sum(rows[0]))]
            });
            vec![Atom::Var(sums)]
        });
        let m = Value::Arr(Array::from_f64(
            vec![2, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        ));
        let out = run1(&f, &[m]);
        assert_eq!(out.as_arr().f64s(), &[6.0, 15.0]);
    }

    #[test]
    fn update_and_index() {
        // In-place updates consume their operand (uniqueness semantics): the
        // read of the original value happens before the update.
        let mut b = Builder::new();
        let f = b.build_fun("updidx", &[Type::arr_f64(1)], |b, ps| {
            let xs = ps[0];
            let orig = b.index(xs, &[Atom::i64(1)]);
            let xs2 = b.update(xs, &[Atom::i64(1)], Atom::f64(42.0));
            let x = b.index(xs2, &[Atom::i64(1)]);
            let y = b.index(xs2, &[Atom::i64(0)]);
            vec![Atom::Var(x), Atom::Var(orig), Atom::Var(y)]
        });
        let out = Interp::sequential().run(&f, &[Value::from(vec![1.0, 2.0, 3.0])]);
        assert_eq!(out[0].as_f64(), 42.0);
        assert_eq!(out[1].as_f64(), 2.0);
        assert_eq!(out[2].as_f64(), 1.0);
    }

    #[test]
    fn replicate_and_iota() {
        let mut b = Builder::new();
        let f = b.build_fun("ri", &[Type::I64], |b, ps| {
            let n = Atom::Var(ps[0]);
            let i = b.iota(n);
            let r = b.replicate(n, Atom::f64(2.5));
            vec![Atom::Var(i), Atom::Var(r)]
        });
        let out = Interp::sequential().run(&f, &[Value::I64(3)]);
        assert_eq!(out[0].as_arr().i64s(), &[0, 1, 2]);
        assert_eq!(out[1].as_arr().f64s(), &[2.5, 2.5, 2.5]);
    }
}
