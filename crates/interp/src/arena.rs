//! The per-invocation buffer arena: a thread-local, shape-keyed pool of
//! flat array buffers, sized by the optimizer's buffer plan
//! (`fir-opt`'s `memplan::BufferPlan`), so steady-state serving reuses the
//! same buffers invocation after invocation instead of round-tripping
//! through the heap allocator.
//!
//! # Protocol
//!
//! An executor wraps one program invocation in [`scope`]`(slots)`. While a
//! scope is active on the current thread:
//!
//! * [`take_f64`]/[`take_i64`]/[`take_bool`]`(len)` hand out an empty
//!   buffer with capacity `len`, preferring a pooled buffer of exactly that
//!   capacity (steady-state serving repeats shapes, so exact-capacity
//!   keying hits). A pooled take counts as an **arena hit**; anything else
//!   counts as a **heap allocation** — in active *and* inactive states, so
//!   planned and unplanned runs report comparable allocation counts.
//! * [`publish_f64`]/… wrap a filled buffer into the `Arc` the runtime
//!   value holds, and register a second reference in the arena's *lent*
//!   list (bounded by the scope's slot count). The lent reference is how
//!   buffers come back: once every runtime reference is dropped the lent
//!   entry is the only owner, and the next *harvest* — at scope entry and
//!   on any take miss, so loop-temporary buffers recycle mid-invocation —
//!   reclaims it into the free pool.
//! * [`give_f64`]/… return a raw buffer that never became a value (e.g. a
//!   worker chunk merged into a bigger buffer).
//! * [`disown_f64`]/… is the copy-on-write integration: a mutation about
//!   to `Arc::make_mut` a buffer whose only *other* owner is the lent list
//!   first drops the lent reference, making the mutation genuinely
//!   in-place. Without this, pooling would defeat the in-place lowering it
//!   exists to serve. The buffer is re-registered when the mutated value's
//!   data is next published (or simply heap-freed — correctness never
//!   depends on the pool).
//!
//! Reused buffers are handed out empty and completely rewritten by their
//! taker before publication, so pooling is bitwise-invisible; forcing
//! every take to miss (capacity override 0) must produce identical bits.
//!
//! # Accounting
//!
//! Global relaxed atomics aggregate across threads: heap allocations,
//! arena hits, bytes currently pooled, and the engine-side count of
//! reserved plan slots ([`reserve_slots`]/[`release_slots`] — cache
//! eviction must return its reservation). [`alloc_stats`] snapshots all
//! four for `CacheStats` and the serving metrics.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

static HEAP_ALLOCS: AtomicU64 = AtomicU64::new(0);
static ARENA_HITS: AtomicU64 = AtomicU64::new(0);
static POOLED_BYTES: AtomicU64 = AtomicU64::new(0);
static RESERVED_SLOTS: AtomicU64 = AtomicU64::new(0);
/// Test hook: forces every scope's capacity. `< 0` means no override.
static CAP_OVERRIDE: AtomicI64 = AtomicI64::new(-1);

/// A snapshot of the arena's global counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Buffer requests served by the heap allocator (monotonic).
    pub heap_allocs: u64,
    /// Buffer requests served from the arena pool (monotonic).
    pub arena_hits: u64,
    /// Bytes currently sitting in free pools, all threads.
    pub pooled_bytes: u64,
    /// Plan slots currently reserved by cached compiled programs.
    pub reserved_slots: u64,
}

/// Snapshot the global allocation counters.
pub fn alloc_stats() -> AllocStats {
    AllocStats {
        heap_allocs: HEAP_ALLOCS.load(Ordering::Relaxed),
        arena_hits: ARENA_HITS.load(Ordering::Relaxed),
        pooled_bytes: POOLED_BYTES.load(Ordering::Relaxed),
        reserved_slots: RESERVED_SLOTS.load(Ordering::Relaxed),
    }
}

/// Record that a compiled program holding a buffer plan of `n` slots
/// entered the cache.
pub fn reserve_slots(n: usize) {
    RESERVED_SLOTS.fetch_add(n as u64, Ordering::Relaxed);
}

/// Return a reservation made by [`reserve_slots`] (cache eviction, engine
/// drop).
pub fn release_slots(n: usize) {
    RESERVED_SLOTS.fetch_sub(n as u64, Ordering::Relaxed);
}

/// Force every subsequently-entered scope to the given capacity (tests:
/// `Some(0)` turns the arena off, making every take a heap fallback).
/// `None` restores plan-driven capacities.
pub fn set_capacity_override(cap: Option<usize>) {
    CAP_OVERRIDE.store(cap.map_or(-1, |c| c as i64), Ordering::Relaxed);
}

struct Pool<T> {
    /// Reclaimed buffers, cleared, keyed by exact capacity.
    free: HashMap<usize, Vec<Vec<T>>>,
    /// Second references to published buffers; an entry whose runtime
    /// twin has been dropped (strong count 1) is reclaimable.
    lent: Vec<Arc<Vec<T>>>,
}

impl<T> Default for Pool<T> {
    fn default() -> Self {
        Pool {
            free: HashMap::new(),
            lent: Vec::new(),
        }
    }
}

impl<T> Pool<T> {
    fn put_free(&mut self, v: Vec<T>) {
        POOLED_BYTES.fetch_add((v.capacity() * size_of::<T>()) as u64, Ordering::Relaxed);
        self.free.entry(v.capacity()).or_default().push(v);
    }

    /// Move every lent buffer whose runtime references are all gone into
    /// the free pool.
    fn harvest(&mut self) {
        let mut i = 0;
        while i < self.lent.len() {
            if Arc::strong_count(&self.lent[i]) == 1 {
                let arc = self.lent.swap_remove(i);
                if let Ok(mut v) = Arc::try_unwrap(arc) {
                    v.clear();
                    self.put_free(v);
                }
            } else {
                i += 1;
            }
        }
    }

    fn pop_free(&mut self, len: usize) -> Option<Vec<T>> {
        let v = self.free.get_mut(&len).and_then(Vec::pop)?;
        POOLED_BYTES.fetch_sub((v.capacity() * size_of::<T>()) as u64, Ordering::Relaxed);
        Some(v)
    }

    fn take(&mut self, len: usize, active: bool) -> Vec<T> {
        if len == 0 {
            // `Vec::new` performs no allocation; keep it out of both
            // counters so the metric stays an allocator-pressure measure.
            return Vec::new();
        }
        if active {
            if let Some(v) = self.pop_free(len) {
                ARENA_HITS.fetch_add(1, Ordering::Relaxed);
                return v;
            }
            // A miss mid-invocation often just means the previous loop
            // iteration's buffer has not been reclaimed yet.
            self.harvest();
            if let Some(v) = self.pop_free(len) {
                ARENA_HITS.fetch_add(1, Ordering::Relaxed);
                return v;
            }
        }
        HEAP_ALLOCS.fetch_add(1, Ordering::Relaxed);
        Vec::with_capacity(len)
    }

    fn publish(&mut self, data: Vec<T>, active: bool, capacity: usize) -> Arc<Vec<T>> {
        let arc = Arc::new(data);
        if active && !arc.is_empty() {
            if self.lent.len() >= capacity {
                self.harvest();
            }
            if self.lent.len() < capacity {
                self.lent.push(Arc::clone(&arc));
            }
        }
        arc
    }

    fn give(&mut self, mut v: Vec<T>, active: bool) {
        if active && v.capacity() > 0 {
            v.clear();
            self.put_free(v);
        }
    }

    fn disown(&mut self, arc: &Arc<Vec<T>>) -> bool {
        // Only useful when the lent entry is the *single* other owner:
        // dropping it then enables an in-place `Arc::make_mut`. With more
        // owners around, the copy-on-write copy happens regardless and the
        // lent entry should stay for a later harvest.
        if Arc::strong_count(arc) != 2 {
            return false;
        }
        match self.lent.iter().position(|l| Arc::ptr_eq(l, arc)) {
            Some(i) => {
                self.lent.swap_remove(i);
                true
            }
            None => false,
        }
    }
}

#[derive(Default)]
struct Arena {
    f64s: Pool<f64>,
    i64s: Pool<i64>,
    bools: Pool<bool>,
    /// Nesting depth of active scopes; 0 = inactive.
    depth: usize,
    /// Lent-list bound, set by the outermost scope.
    capacity: usize,
}

thread_local! {
    static ARENA: RefCell<Arena> = RefCell::new(Arena::default());
}

/// RAII guard for one arena-backed invocation on the current thread.
/// Dropping it deactivates the arena (outermost scope only); pooled
/// buffers persist across scopes — that persistence *is* the reuse.
pub struct ArenaScope {
    activated: bool,
}

/// Activate the calling thread's arena for one invocation, bounding the
/// lent list at `slots` (from the program's buffer plan; subject to
/// [`set_capacity_override`]). A zero capacity yields an inert scope:
/// every take falls back to the heap.
pub fn scope(slots: usize) -> ArenaScope {
    let over = CAP_OVERRIDE.load(Ordering::Relaxed);
    let slots = if over >= 0 { over as usize } else { slots };
    ARENA.with(|a| {
        let mut a = a.borrow_mut();
        if a.depth == 0 {
            if slots == 0 {
                return ArenaScope { activated: false };
            }
            a.capacity = slots;
            // Reclaim everything the previous invocation let go of.
            a.f64s.harvest();
            a.i64s.harvest();
            a.bools.harvest();
        }
        a.depth += 1;
        ArenaScope { activated: true }
    })
}

impl Drop for ArenaScope {
    fn drop(&mut self) {
        if self.activated {
            ARENA.with(|a| {
                a.borrow_mut().depth -= 1;
            });
        }
    }
}

macro_rules! typed_api {
    ($take:ident, $publish:ident, $give:ident, $disown:ident, $pool:ident, $t:ty) => {
        /// Get an empty buffer with capacity `len` (pooled when the arena
        /// is active and has one of exactly that capacity).
        pub fn $take(len: usize) -> Vec<$t> {
            ARENA.with(|a| {
                let mut a = a.borrow_mut();
                let active = a.depth > 0;
                a.$pool.take(len, active)
            })
        }

        /// Wrap a filled buffer for a runtime value, registering it with
        /// the active arena so it can be reclaimed once dropped.
        pub fn $publish(data: Vec<$t>) -> Arc<Vec<$t>> {
            ARENA.with(|a| {
                let mut a = a.borrow_mut();
                let active = a.depth > 0;
                let capacity = a.capacity;
                a.$pool.publish(data, active, capacity)
            })
        }

        /// Return a buffer that never became a value to the active arena.
        pub fn $give(v: Vec<$t>) {
            ARENA.with(|a| {
                let mut a = a.borrow_mut();
                let active = a.depth > 0;
                a.$pool.give(v, active)
            })
        }

        /// Drop the arena's lent reference to `arc` when that reference is
        /// the only other owner, enabling an in-place `Arc::make_mut`.
        /// Returns whether a reference was dropped.
        pub fn $disown(arc: &Arc<Vec<$t>>) -> bool {
            if Arc::strong_count(arc) < 2 {
                return false;
            }
            ARENA.with(|a| a.borrow_mut().$pool.disown(arc))
        }
    };
}

typed_api!(take_f64, publish_f64, give_f64, disown_f64, f64s, f64);
typed_api!(take_i64, publish_i64, give_i64, disown_i64, i64s, i64);
typed_api!(take_bool, publish_bool, give_bool, disown_bool, bools, bool);

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The capacity override and the counters are process-global; arena
    /// tests therefore run one at a time.
    static LOCK: Mutex<()> = Mutex::new(());

    // Counter assertions are `>=`: the counters are process-global and
    // sibling tests run concurrently.
    #[test]
    fn inactive_takes_are_heap_fallbacks() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let before = alloc_stats();
        let v = take_f64(16);
        assert_eq!(v.capacity(), 16);
        let after = alloc_stats();
        assert!(after.heap_allocs - before.heap_allocs >= 1);
    }

    #[test]
    fn published_buffers_recycle_across_scopes() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _s = scope(4);
        let mut v = take_f64(8);
        v.extend_from_slice(&[1.0; 8]);
        let ptr = v.as_ptr();
        let arc = publish_f64(v);
        drop(arc); // lent entry is now the only owner
        let v2 = take_f64(8);
        assert_eq!(v2.as_ptr(), ptr, "take must reuse the reclaimed buffer");
        assert!(v2.is_empty(), "reused buffers are handed out empty");
    }

    #[test]
    fn disown_enables_unique_ownership() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _s = scope(4);
        let mut v = take_f64(4);
        v.extend_from_slice(&[1.0; 4]);
        let mut arc = publish_f64(v);
        assert_eq!(Arc::strong_count(&arc), 2);
        assert!(disown_f64(&arc));
        assert_eq!(Arc::strong_count(&arc), 1);
        // make_mut is now in-place (no copy) — and a second disown is a no-op.
        let ptr = arc.as_ptr();
        Arc::make_mut(&mut arc)[0] = 9.0;
        assert_eq!(arc.as_ptr(), ptr);
        assert!(!disown_f64(&arc));
    }

    #[test]
    fn zero_capacity_scope_is_inert() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_capacity_override(Some(0));
        let before = alloc_stats();
        {
            let _s = scope(16);
            let v = take_i64(8);
            let _ = publish_i64(v);
            let v2 = take_i64(8);
            drop(v2);
        }
        let after = alloc_stats();
        set_capacity_override(None);
        assert!(after.heap_allocs - before.heap_allocs >= 2);
    }

    #[test]
    fn give_feeds_the_free_pool() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _s = scope(4);
        let mut v = take_bool(8);
        v.push(true);
        let ptr = v.as_ptr();
        give_bool(v);
        let v2 = take_bool(8);
        assert_eq!(v2.as_ptr(), ptr);
        assert!(v2.is_empty());
    }

    #[test]
    fn reservations_are_a_gauge() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let before = alloc_stats().reserved_slots;
        reserve_slots(5);
        assert_eq!(alloc_stats().reserved_slots, before + 5);
        release_slots(5);
        assert_eq!(alloc_stats().reserved_slots, before);
    }
}
