//! `interp` — a multi-threaded bulk-parallel evaluator for the `fir` IR.
//!
//! This crate is the reproduction's stand-in for the Futhark GPU backend:
//! SOACs are executed as bulk-parallel operations over OS threads,
//! accumulator updates become atomic adds (the CPU analogue of `atomicAdd`),
//! and sequential loops run sequentially. The AD transformation in the
//! `futhark-ad` crate is purely IR-to-IR; this crate is what gives those
//! transformed programs an executable (and measurable) semantics.
//!
//! # Example
//!
//! ```
//! use fir::builder::Builder;
//! use fir::types::Type;
//! use interp::{Interp, Value};
//!
//! let mut b = Builder::new();
//! let dot = b.build_fun("dot", &[Type::arr_f64(1), Type::arr_f64(1)], |b, ps| {
//!     let prods = b.map1(Type::arr_f64(1), &[ps[0], ps[1]], |b, es| {
//!         vec![b.fmul(es[0].into(), es[1].into())]
//!     });
//!     vec![b.sum(prods).into()]
//! });
//! let out = Interp::new().run(&dot, &[Value::from(vec![1.0, 2.0]), Value::from(vec![3.0, 4.0])]);
//! assert_eq!(out[0].as_f64(), 11.0);
//! ```

pub mod acc;
pub mod arena;
pub mod backend;
pub mod error;
pub mod eval;
pub mod pool;
pub mod value;

pub use acc::Accum;
pub use arena::{alloc_stats, AllocStats, ArenaScope};
pub use backend::{validate_args, Backend, Executable};
pub use error::ExecError;
pub use eval::{ExecConfig, Interp};
pub use pool::{PoolUtilization, WorkerPool};
pub use value::{Array, Data, Value};
