//! Fallible execution: the error type shared by every backend.
//!
//! The seed backends panicked on malformed programs and arguments; a
//! serving-scale system cannot take a request down that way. `ExecError`
//! is the single error currency of the two-phase backend interface
//! ([`Backend::prepare`](crate::Backend::prepare) and
//! [`Executable::run`](crate::Executable::run)): ill-typed IR is rejected at
//! preparation time, argument arity/type mismatches at call time, and any
//! residual executor panic is caught and reported instead of unwinding
//! through the caller.

use std::fmt;

use fir::typecheck::TypeError;
use fir::types::Type;

/// An error from preparing or executing a `fir` function on a backend.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The program failed the structural type check at preparation time.
    IllTyped(TypeError),
    /// The call supplied the wrong number of arguments.
    Arity {
        /// Function name.
        fun: String,
        /// Number of declared parameters.
        expected: usize,
        /// Number of arguments supplied.
        got: usize,
    },
    /// An argument's runtime type does not match the declared parameter type.
    ArgType {
        /// Function name.
        fun: String,
        /// Zero-based parameter index.
        index: usize,
        /// The declared parameter type.
        expected: Type,
        /// The runtime type of the supplied value.
        got: Type,
    },
    /// The first result is not the scalar `f64` the caller asked for.
    NotScalar {
        /// Function name.
        fun: String,
        /// Description of what was returned instead.
        got: String,
    },
    /// The executor failed at runtime (e.g. a shape mismatch the type
    /// system cannot rule out); the panic is caught and reported here.
    /// Note the process's panic *hook* still runs before the catch, so
    /// such failures also print the usual panic message to stderr — the
    /// caller's control flow is clean, the log line remains.
    Runtime {
        /// Function name.
        fun: String,
        /// The panic payload or error description.
        message: String,
    },
}

impl From<TypeError> for ExecError {
    fn from(e: TypeError) -> ExecError {
        ExecError::IllTyped(e)
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::IllTyped(e) => write!(f, "{e}"),
            ExecError::Arity { fun, expected, got } => {
                write!(f, "`{fun}` takes {expected} arguments, got {got}")
            }
            ExecError::ArgType {
                fun,
                index,
                expected,
                got,
            } => write!(
                f,
                "`{fun}` argument {index} has type {got}, expected {expected}"
            ),
            ExecError::NotScalar { fun, got } => {
                write!(f, "`{fun}` did not return a scalar f64: {got}")
            }
            ExecError::Runtime { fun, message } => {
                write!(f, "`{fun}` failed at runtime: {message}")
            }
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::IllTyped(e) => Some(e),
            _ => None,
        }
    }
}

/// Render a caught panic payload as a message (shared by every backend
/// that converts caught panics into [`ExecError::Runtime`]).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = ExecError::Arity {
            fun: "f".into(),
            expected: 2,
            got: 3,
        };
        assert_eq!(e.to_string(), "`f` takes 2 arguments, got 3");
        let e = ExecError::ArgType {
            fun: "f".into(),
            index: 1,
            expected: Type::arr_f64(1),
            got: Type::I64,
        };
        assert_eq!(e.to_string(), "`f` argument 1 has type i64, expected []f64");
        let e = ExecError::from(TypeError::new("boom").in_fun("g"));
        assert_eq!(e.to_string(), "type error in `g`: boom");
    }
}
